"""Journal payload codec and campaign keys.

``encode_result``/``decode_result`` round-trip a
:class:`~repro.harness.runner.TestResult` through plain JSON so a resumed
campaign can rebuild *exactly* the result objects an uninterrupted run
would hold — every field a renderer reads (verdicts, iteration outcomes,
failure details, generated sources) survives, which is what makes the
resumed report byte-identical.

Campaign keys are canonical JSON-safe dicts binding a journal to one
campaign: the suite selection, the compiler behaviour under test, the
result-affecting harness config, the seeds, and the code version.  Pure
execution knobs (``policy``, ``workers``, ``compile_cache``,
``retry_backoff_s``, ``backend``) are deliberately excluded — the engine
guarantees they never change results, so a campaign may be resumed under
a different policy, pool size or interpreter backend.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Dict, List, Optional, Sequence

import repro
from repro.harness.config import HarnessConfig
from repro.harness.runner import (
    FailureKind,
    IterationOutcome,
    PhaseResult,
    SuiteRunReport,
    TestResult,
)
from repro.journal.wal import JOURNAL_FORMAT, JournalMismatchError

#: config fields that can never change results (engine determinism
#: guarantee — ``backend`` is covered by the cross-backend equivalence
#: gate in tests; the live-telemetry knobs only *observe* a run) and
#: therefore stay out of the campaign key
_EXECUTION_ONLY_CONFIG = {"policy", "workers", "compile_cache",
                          "retry_backoff_s", "backend",
                          "live_stream", "status", "prom"}


def canonicalize(obj):
    """Reduce ``obj`` to JSON-round-trip-stable data (sorted, no sets)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return canonicalize(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(obj.items(),
                                                           key=lambda kv: str(kv[0]))}
    if isinstance(obj, (set, frozenset)):
        return sorted((canonicalize(x) for x in obj), key=repr)
    if isinstance(obj, (list, tuple)):
        return [canonicalize(x) for x in obj]
    if isinstance(obj, Enum):
        return canonicalize(obj.value)
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return str(obj)


def config_fingerprint(config: HarnessConfig) -> dict:
    """The result-affecting subset of a config, canonicalized."""
    fields = dataclasses.asdict(config)
    return canonicalize({k: v for k, v in fields.items()
                         if k not in _EXECUTION_ONLY_CONFIG})


def validate_campaign_key(suite: str, behavior, config: HarnessConfig) -> dict:
    """Campaign key for a ``repro validate`` run."""
    return {
        "format": JOURNAL_FORMAT,
        "command": "validate",
        "code_version": repro.__version__,
        "suite": suite,
        "compiler": behavior.label,
        "behavior": canonicalize(behavior),
        "config": config_fingerprint(config),
    }


def titan_campaign_key(config: HarnessConfig, *, nodes: int, degraded: float,
                       seed: int, sample: int, recheck: int) -> dict:
    """Campaign key for a ``repro titan`` sweep."""
    return {
        "format": JOURNAL_FORMAT,
        "command": "titan",
        "code_version": repro.__version__,
        "nodes": nodes,
        "degraded": degraded,
        "seed": seed,
        "sample": sample,
        "recheck": recheck,
        "config": config_fingerprint(config),
    }


def unit_keys(templates: Sequence) -> List[str]:
    """Stable, unique journal keys for a template list, in order.

    ``feature:language`` is unique in practice; a duplicate (two templates
    for the same pair) gets a deterministic ``~n`` suffix in selection
    order, mirroring the tracer's span-ID rule.
    """
    seen: Dict[str, int] = {}
    keys: List[str] = []
    for template in templates:
        base = f"{template.feature}:{template.language}"
        n = seen.get(base, 0)
        seen[base] = n + 1
        keys.append(base if n == 0 else f"{base}~{n + 1}")
    return keys


# ---------------------------------------------------------------------------
# TestResult round-trip
# ---------------------------------------------------------------------------


def _encode_iteration(it: IterationOutcome) -> dict:
    return {
        "ok": it.ok,
        "value": it.value,
        "error": it.error,
        "kind": it.kind.value if it.kind is not None else None,
        "steps": it.steps,
        "bytes_to_device": it.bytes_to_device,
        "bytes_to_host": it.bytes_to_host,
        "queue_waits": it.queue_waits,
        "queue_max_pending": it.queue_max_pending,
    }


def _decode_iteration(data: dict) -> IterationOutcome:
    kind = data.get("kind")
    return IterationOutcome(
        ok=bool(data.get("ok")),
        value=data.get("value"),
        error=data.get("error"),
        kind=FailureKind(kind) if kind is not None else None,
        steps=int(data.get("steps", 0)),
        bytes_to_device=int(data.get("bytes_to_device", 0)),
        bytes_to_host=int(data.get("bytes_to_host", 0)),
        queue_waits=int(data.get("queue_waits", 0)),
        queue_max_pending=int(data.get("queue_max_pending", 0)),
    )


def _encode_phase(phase: PhaseResult) -> dict:
    return {
        "mode": phase.mode,
        "source": phase.source,
        "compile_error": phase.compile_error,
        "harness_error": phase.harness_error,
        "static_error": phase.static_error,
        "compile_s": phase.compile_s,
        "run_s": phase.run_s,
        "cache_hit": phase.cache_hit,
        "lower_hit": phase.lower_hit,
        "iterations": [_encode_iteration(it) for it in phase.iterations],
    }


def _decode_phase(data: dict) -> PhaseResult:
    return PhaseResult(
        mode=data.get("mode", "functional"),
        source=data.get("source", ""),
        compile_error=data.get("compile_error"),
        harness_error=data.get("harness_error"),
        static_error=data.get("static_error"),
        compile_s=float(data.get("compile_s", 0.0)),
        run_s=float(data.get("run_s", 0.0)),
        cache_hit=bool(data.get("cache_hit", False)),
        lower_hit=(bool(data["lower_hit"])
                   if data.get("lower_hit") is not None else None),
        iterations=[_decode_iteration(it)
                    for it in data.get("iterations", [])],
    )


def encode_result(result: TestResult) -> dict:
    """One completed work unit as a JSON-safe journal payload."""
    return {
        "elapsed_s": result.elapsed_s,
        "functional": _encode_phase(result.functional),
        "cross": _encode_phase(result.cross)
        if result.cross is not None else None,
    }


def decode_result(payload: dict, template) -> TestResult:
    """Rebuild a :class:`TestResult` from a journal payload + its template."""
    cross = payload.get("cross")
    return TestResult(
        template=template,
        functional=_decode_phase(payload.get("functional") or {}),
        cross=_decode_phase(cross) if cross is not None else None,
        elapsed_s=float(payload.get("elapsed_s", 0.0)),
    )


# ---------------------------------------------------------------------------
# Titan StackCheck round-trip
# ---------------------------------------------------------------------------


def encode_check(check) -> dict:
    """One Titan node/stack check (its whole mini suite run) as a payload."""
    report = check.report
    return {
        "node": check.node_id,
        "stack": check.stack,
        "healthy": check.healthy,
        "compiler_label": report.compiler_label,
        "elapsed_s": report.elapsed_s,
        "results": [
            {"unit": key, "result": encode_result(result)}
            for key, result in zip(
                unit_keys([r.template for r in report.results]),
                report.results,
            )
        ],
    }


def decode_check(payload: dict, templates_by_key: Dict[str, object],
                 config: HarnessConfig):
    """Rebuild a Titan :class:`~repro.harness.titan.StackCheck`."""
    from repro.harness.titan import StackCheck

    results: List[TestResult] = []
    for entry in payload.get("results", []):
        template = templates_by_key.get(entry.get("unit"))
        if template is None:
            raise JournalMismatchError(
                f"journal references template {entry.get('unit')!r} that the "
                "current suite selection does not contain — the suite or "
                "code version changed under the journal"
            )
        results.append(decode_result(entry.get("result") or {}, template))
    report = SuiteRunReport(
        compiler_label=payload.get("compiler_label", "?"),
        config=config,
        results=results,
        elapsed_s=float(payload.get("elapsed_s", 0.0)),
    )
    return StackCheck(
        node_id=int(payload.get("node", -1)),
        stack=str(payload.get("stack", "?")),
        healthy=bool(payload.get("healthy", True)),
        report=report,
    )


def template_map(suite, config: HarnessConfig) -> Dict[str, object]:
    """Key -> template for the selection a config makes on a suite (the
    lookup side of :func:`decode_check`)."""
    templates = list(suite.select(
        languages=config.languages,
        features=config.features,
        prefixes=config.feature_prefixes,
    ))
    return dict(zip(unit_keys(templates), templates))
