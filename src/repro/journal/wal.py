"""The write-ahead journal: checksummed JSONL records, torn-tail recovery.

File layout (one JSON object per line, ``sha256`` over the rest of the
record, truncated to 16 hex chars)::

    {"type":"header","format":"repro.journal/v1","campaign":{...},"sha256":...}
    {"type":"unit","unit":"parallel.if:c","payload":{...},"sha256":...}
    {"type":"resume","generation":1,"sha256":...}
    ...

* The **header** binds the journal to one campaign key — suite selection,
  vendor behaviour, harness config, seeds, code version.  Resuming under a
  different key raises :class:`JournalMismatchError` naming the differing
  fields.
* Each **unit** record is one completed work unit, appended and fsync'd
  the moment the engine hands the result back — a SIGKILL one instruction
  later loses nothing.
* A **resume** record marks each reopening; its generation feeds the
  ``journal`` fault site so an injected torn write is transient across
  resumes (like every other injected fault).

Torn-tail rule: a crash mid-``write`` leaves trailing bytes that are not a
complete, checksum-valid line.  On load, such bytes are tolerated **only
at the very end of the file** — they are counted, reported, and truncated
before appending resumes.  A bad record with intact records *after* it is
not a torn tail but corruption, and raises :class:`JournalCorruptError`;
a journal that lies is worse than no journal.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.faults import NULL_INJECTOR
from repro.ioutil import fsync_directory
from repro.obs import NULL_TRACER

#: format tag carried by every header and verified on load
JOURNAL_FORMAT = "repro.journal/v1"


class JournalError(Exception):
    """Base class for journal load/resume failures."""


class JournalMismatchError(JournalError):
    """The journal's campaign key does not match the requested campaign."""


class JournalCorruptError(JournalError):
    """The journal is damaged beyond the torn-tail rule (bad record with
    intact records after it, missing/invalid header, unreadable file)."""


def _checksum(record: dict) -> str:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def record_line(record: dict) -> bytes:
    """Serialize one record as a checksummed JSONL line (with newline)."""
    sealed = dict(record)
    sealed["sha256"] = _checksum(record)
    return (json.dumps(sealed, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def _verify_line(chunk: bytes) -> Optional[dict]:
    """Parse and checksum-verify one line; None when invalid."""
    try:
        record = json.loads(chunk.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(record, dict):
        return None
    expected = record.pop("sha256", None)
    if expected != _checksum(record):
        return None
    return record


@dataclass
class LoadedJournal:
    """The intact prefix of a journal file."""

    path: str
    campaign: dict
    #: unit key -> payload (last record wins, in case a crash re-ran a unit)
    records: Dict[str, dict] = field(default_factory=dict)
    #: resume generations recorded so far (0 = the original run)
    generation: int = 0
    resumes: int = 0
    #: byte length of the intact prefix (the file is valid up to here)
    valid_bytes: int = 0
    #: trailing bytes dropped by the torn-tail rule (0 = clean shutdown)
    torn_bytes: int = 0


def read_journal(path: str) -> LoadedJournal:
    """Load a journal, verifying checksums and applying the torn-tail rule.

    Pure: never modifies the file (truncation happens on resume).
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as err:
        raise JournalCorruptError(f"cannot read journal {path!r}: {err}") from err
    loaded = LoadedJournal(path=path, campaign={})
    pos = 0
    lineno = 0
    saw_header = False
    while pos < len(data):
        lineno += 1
        newline = data.find(b"\n", pos)
        complete = newline != -1
        chunk = data[pos:newline] if complete else data[pos:]
        record = _verify_line(chunk) if complete else None
        if record is None:
            # invalid bytes are a torn tail only at the very end of the file
            if complete and newline + 1 < len(data):
                raise JournalCorruptError(
                    f"journal {path!r} line {lineno}: checksum or parse "
                    "failure with intact records after it — this is "
                    "corruption, not a torn tail; refusing to trust the file"
                )
            if not saw_header:
                raise JournalCorruptError(
                    f"journal {path!r}: header record is missing or torn"
                )
            loaded.valid_bytes = pos
            loaded.torn_bytes = len(data) - pos
            return loaded
        kind = record.get("type")
        if not saw_header:
            if kind != "header" or record.get("format") != JOURNAL_FORMAT:
                raise JournalCorruptError(
                    f"journal {path!r}: first record must be a "
                    f"{JOURNAL_FORMAT} header (got {kind!r})"
                )
            loaded.campaign = record.get("campaign") or {}
            saw_header = True
        elif kind == "unit":
            loaded.records[record["unit"]] = record.get("payload") or {}
        elif kind == "resume":
            loaded.resumes += 1
            loaded.generation = max(loaded.generation,
                                    int(record.get("generation", 0)))
        else:
            raise JournalCorruptError(
                f"journal {path!r} line {lineno}: unknown record type {kind!r}"
            )
        pos = newline + 1
    if not saw_header:
        raise JournalCorruptError(f"journal {path!r} is empty (no header)")
    loaded.valid_bytes = pos
    return loaded


def _diff_campaigns(expected: dict, found: dict) -> str:
    """Human-readable list of differing campaign-key fields."""
    parts = []
    for key in sorted(set(expected) | set(found)):
        a, b = found.get(key), expected.get(key)
        if a != b:
            parts.append(f"{key}: journal has {a!r}, this run has {b!r}")
    return "; ".join(parts) or "(keys differ structurally)"


class JournalWriter:
    """Append-only, fsync-per-record campaign journal.

    Construct via :meth:`create` (new campaign) or :meth:`resume`
    (continue an interrupted one).  ``get`` serves replayed payloads;
    ``append`` durably records one completed unit.  Appends are serialized
    by a lock (engines invoke completion callbacks from the coordinating
    thread, but the journal does not rely on that).
    """

    def __init__(self, path: str, campaign: dict, handle,
                 records: Optional[Dict[str, dict]] = None,
                 generation: int = 0, torn_bytes: int = 0,
                 tracer=None, faults=None):
        self.path = path
        self.campaign = campaign
        self.records: Dict[str, dict] = records if records is not None else {}
        #: how many times this journal has been (re)opened; feeds the
        #: ``journal`` fault site's attempt number, so injected torn
        #: writes are transient across resumes
        self.generation = generation
        #: bytes dropped by the torn-tail rule when this writer resumed
        self.torn_bytes = torn_bytes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults if faults is not None else NULL_INJECTOR
        self._handle = handle
        self._lock = threading.Lock()

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, path: str, campaign: dict,
               tracer=None, faults=None) -> "JournalWriter":
        """Start a new campaign journal (truncates any existing file)."""
        handle = open(path, "wb")
        header = {"type": "header", "format": JOURNAL_FORMAT,
                  "campaign": campaign}
        handle.write(record_line(header))
        handle.flush()
        os.fsync(handle.fileno())
        fsync_directory(os.path.dirname(os.path.abspath(path)))
        return cls(path, campaign, handle, tracer=tracer, faults=faults)

    @classmethod
    def resume(cls, path: str, campaign: dict,
               tracer=None, faults=None) -> "JournalWriter":
        """Reopen an interrupted campaign's journal for replay + append.

        Verifies the campaign key, truncates a torn tail, and appends a
        ``resume`` marker so later injected-fault decisions know which
        generation they are in.
        """
        loaded = read_journal(path)
        if loaded.campaign != campaign:
            raise JournalMismatchError(
                f"journal {path!r} belongs to a different campaign — "
                + _diff_campaigns(campaign, loaded.campaign)
            )
        handle = open(path, "r+b")
        if loaded.torn_bytes:
            handle.truncate(loaded.valid_bytes)
        handle.seek(0, os.SEEK_END)
        generation = loaded.generation + 1
        handle.write(record_line({"type": "resume", "generation": generation}))
        handle.flush()
        os.fsync(handle.fileno())
        writer = cls(path, campaign, handle, records=dict(loaded.records),
                     generation=generation, torn_bytes=loaded.torn_bytes,
                     tracer=tracer, faults=faults)
        tracer = writer.tracer
        if tracer.enabled:
            if loaded.torn_bytes:
                tracer.event("journal.torn_tail", path=path,
                             dropped_bytes=loaded.torn_bytes)
                tracer.metrics.counter("journal.torn_tail").inc()
            tracer.event("journal.resumed", path=path,
                         generation=generation, units=len(writer.records))
        return writer

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()

    # ------------------------------------------------------------- record io

    def get(self, unit: str) -> Optional[dict]:
        """The replayed payload for ``unit``, or None if it must be run."""
        return self.records.get(unit)

    def append(self, unit: str, payload: dict) -> None:
        """Durably record one completed unit (write + flush + fsync).

        The ``journal`` fault site fires *mid-write*: a prefix of the line
        reaches the disk and the simulated crash propagates — exactly the
        state a SIGKILL between ``write`` and ``fsync`` leaves behind, and
        what the torn-tail rule exists to clean up.
        """
        line = record_line({"type": "unit", "unit": unit, "payload": payload})
        with self._lock:
            if self.faults.journal_site(unit, self.generation):
                self._handle.write(line[: max(1, len(line) // 2)])
                self._handle.flush()
                os.fsync(self._handle.fileno())
                from repro.faults import InjectedJournalTear

                raise InjectedJournalTear(
                    f"injected torn journal write (unit={unit!r}, "
                    f"generation={self.generation})"
                )
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.records[unit] = payload
        if self.tracer.enabled:
            self.tracer.event("journal.append", unit=unit)
            self.tracer.metrics.counter("journal.appends").inc()
