"""Crash-consistency checking for campaign journals (``repro journal fsck``).

:func:`read_journal` is the strict loader: it refuses a file whose
damage exceeds the torn-tail rule, because resuming from a lying journal
is worse than not resuming at all.  This module is the *diagnostic*
counterpart: it never raises on damage — it scans a base journal plus
every ``<base>.shardK`` segment, classifies each file, and reports what
a resume would salvage:

* ``ok`` — every line checksums, clean shutdown;
* ``torn`` — trailing bytes fail to verify *at EOF only* (the state a
  SIGKILL mid-write leaves); resume truncates them and loses nothing
  already fsync'd;
* ``corrupt`` — a bad line with intact records after it, a missing or
  torn header, or an unknown record type; resume refuses this file, but
  the intact prefix *before* the first bad line is still counted so the
  report shows what re-journaling could recover;
* ``missing`` — the path does not exist.

Cross-file invariant: every scanned file must carry the *same* campaign
key in its header — segments of one sharded campaign are one campaign.
Mismatches are reported per file against the first readable header.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.journal.wal import JOURNAL_FORMAT, _verify_line


@dataclass
class FileFsck:
    """The fsck verdict for one journal file."""

    path: str
    #: 'ok' | 'torn' | 'corrupt' | 'missing'
    status: str
    campaign: dict = field(default_factory=dict)
    #: unit key -> payload from the intact prefix (last record wins)
    records: Dict[str, dict] = field(default_factory=dict)
    generation: int = 0
    resumes: int = 0
    #: byte length of the intact prefix
    valid_bytes: int = 0
    #: bytes past the intact prefix (torn tail or corruption)
    bad_bytes: int = 0
    #: 1-based line number of the first bad line (None when ok)
    first_bad_line: Optional[int] = None
    detail: str = ""
    #: does this file's campaign key match the fsck run's reference key
    campaign_matches: bool = True

    @property
    def salvageable(self) -> bool:
        """Would a resume accept this file (possibly after truncation)?"""
        return self.status in ("ok", "torn") and self.campaign_matches


@dataclass
class FsckReport:
    """The fsck verdict for a whole campaign (base + segments)."""

    path: str
    files: List[FileFsck] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No corruption, no torn tails, consistent campaign keys."""
        return all(f.status == "ok" and f.campaign_matches
                   for f in self.files)

    @property
    def resumable(self) -> bool:
        """Would ``--resume`` accept every file (truncating torn tails)?"""
        return bool(self.files) and all(f.salvageable for f in self.files)

    @property
    def corrupt_files(self) -> List[FileFsck]:
        return [f for f in self.files
                if f.status in ("corrupt", "missing") or not f.campaign_matches]

    def salvageable_units(self) -> Dict[str, dict]:
        """Merged unit records a resume (or re-journaling) would replay:
        the intact prefix of every salvageable file."""
        merged: Dict[str, dict] = {}
        for f in self.files:
            if f.salvageable:
                merged.update(f.records)
        return merged


def scan_journal_file(path: str) -> FileFsck:
    """Tolerantly scan one journal file; never raises on damage."""
    if not os.path.exists(path):
        return FileFsck(path=path, status="missing",
                        detail="file does not exist")
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as err:
        return FileFsck(path=path, status="corrupt",
                        detail=f"cannot read file: {err}")
    result = FileFsck(path=path, status="ok")
    pos = 0
    lineno = 0
    saw_header = False
    while pos < len(data):
        lineno += 1
        newline = data.find(b"\n", pos)
        complete = newline != -1
        chunk = data[pos:newline] if complete else data[pos:]
        record = _verify_line(chunk) if complete else None
        if record is None:
            at_eof = not complete or newline + 1 >= len(data)
            result.valid_bytes = pos
            result.bad_bytes = len(data) - pos
            result.first_bad_line = lineno
            if not saw_header:
                result.status = "corrupt"
                result.detail = "header record is missing or torn"
            elif at_eof:
                result.status = "torn"
                result.detail = (f"{result.bad_bytes} trailing byte(s) fail "
                                 "to verify — a torn tail; resume truncates "
                                 "them")
            else:
                result.status = "corrupt"
                result.detail = (f"line {lineno}: checksum or parse failure "
                                 "with intact records after it — corruption, "
                                 "not a torn tail; resume refuses this file")
            return result
        kind = record.get("type")
        if not saw_header:
            if kind != "header" or record.get("format") != JOURNAL_FORMAT:
                result.valid_bytes = pos
                result.bad_bytes = len(data) - pos
                result.first_bad_line = lineno
                result.status = "corrupt"
                result.detail = (f"first record must be a {JOURNAL_FORMAT} "
                                 f"header (got {kind!r})")
                return result
            result.campaign = record.get("campaign") or {}
            saw_header = True
        elif kind == "unit":
            result.records[record["unit"]] = record.get("payload") or {}
        elif kind == "resume":
            result.resumes += 1
            result.generation = max(result.generation,
                                    int(record.get("generation", 0)))
        else:
            result.valid_bytes = pos
            result.bad_bytes = len(data) - pos
            result.first_bad_line = lineno
            result.status = "corrupt"
            result.detail = f"line {lineno}: unknown record type {kind!r}"
            return result
        pos = newline + 1
    if not saw_header:
        result.status = "corrupt"
        result.detail = "file is empty (no header)"
        return result
    result.valid_bytes = pos
    return result


def fsck_journal(path: str) -> FsckReport:
    """Fsck a campaign journal: the base file (if present) plus every
    ``<base>.shardK`` segment, verifying the cross-file campaign key."""
    from repro.sched.shards import segment_path

    report = FsckReport(path=path)
    if os.path.exists(path):
        report.files.append(scan_journal_file(path))
    shard = 0
    while os.path.exists(segment_path(path, shard)):
        report.files.append(scan_journal_file(segment_path(path, shard)))
        shard += 1
    if not report.files:
        report.files.append(scan_journal_file(path))  # 'missing' verdict
        return report
    reference: Optional[dict] = None
    for f in report.files:
        if f.campaign:
            reference = f.campaign
            break
    if reference is not None:
        for f in report.files:
            if f.campaign and f.campaign != reference:
                f.campaign_matches = False
                f.detail = (f"{f.detail}; " if f.detail else "") + (
                    "campaign key differs from the first readable header — "
                    "segments of one campaign must share one key"
                )
    return report


def render_fsck(report: FsckReport) -> str:
    """Human-readable fsck report (the CLI's output)."""
    lines = [f"fsck       {report.path}"]
    for f in report.files:
        lines.append(f"  {os.path.basename(f.path):28s} {f.status:8s} "
                     f"{len(f.records)} unit(s), {f.valid_bytes} byte(s) "
                     f"intact"
                     + (f", {f.bad_bytes} bad" if f.bad_bytes else ""))
        if f.detail:
            lines.append(f"    {f.detail}")
    salvage = report.salvageable_units()
    if report.clean:
        lines.append(f"verdict    clean — {len(salvage)} unit(s) journaled, "
                     "nothing to repair")
    elif report.resumable:
        lines.append(f"verdict    salvageable — a resume replays "
                     f"{len(salvage)} unit(s) after truncating torn tails")
    else:
        bad = ", ".join(os.path.basename(f.path)
                        for f in report.corrupt_files)
        lines.append(f"verdict    CORRUPT ({bad}) — resume will refuse; "
                     f"{len(salvage)} unit(s) remain salvageable from the "
                     "other files")
    return "\n".join(lines)
