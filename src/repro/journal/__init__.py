"""Durable campaigns: crash-safe result journal + resume (``repro.journal``).

The paper's suite runs as week-long campaigns on Titan (Section VII) where
the *orchestrating process itself* gets preempted, OOM-killed, or loses
its node.  PR 3 made the harness survive faults inside a run; this package
makes the campaign survive the harness: every completed work unit is
appended to a checksummed, fsync'd write-ahead journal the moment an
engine hands it back, so the campaign can be SIGKILLed at any instant —
including mid-journal-write — and resumed to a byte-identical report.

* :mod:`~repro.journal.wal` — the JSONL write-ahead log: header record
  binding the journal to a campaign key, per-record SHA-256 checksums,
  torn-tail detection/truncation, resume markers;
* :mod:`~repro.journal.codec` — campaign keys and the payload round-trip
  for :class:`~repro.harness.runner.TestResult` / Titan stack checks.

CLI surface: ``repro validate --journal FILE`` / ``--resume FILE`` (same
for ``repro titan``), ``repro journal inspect FILE`` and ``repro journal
fsck FILE`` (crash-consistency check across a base journal plus all
``<base>.shardK`` segments; see :mod:`repro.journal.fsck`).
"""

from repro.journal.wal import (
    JOURNAL_FORMAT,
    JournalCorruptError,
    JournalError,
    JournalMismatchError,
    JournalWriter,
    LoadedJournal,
    read_journal,
    record_line,
)
from repro.journal.fsck import (
    FileFsck,
    FsckReport,
    fsck_journal,
    render_fsck,
    scan_journal_file,
)
from repro.journal.codec import (
    canonicalize,
    config_fingerprint,
    decode_check,
    decode_result,
    encode_check,
    encode_result,
    template_map,
    titan_campaign_key,
    unit_keys,
    validate_campaign_key,
)

__all__ = [
    "JOURNAL_FORMAT",
    "JournalCorruptError", "JournalError", "JournalMismatchError",
    "JournalWriter", "LoadedJournal", "read_journal", "record_line",
    "FileFsck", "FsckReport", "fsck_journal", "render_fsck",
    "scan_journal_file",
    "canonicalize", "config_fingerprint",
    "decode_check", "decode_result", "encode_check", "encode_result",
    "template_map", "titan_campaign_key", "unit_keys",
    "validate_campaign_key",
]
