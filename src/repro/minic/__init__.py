"""mini-C frontend.

A compact C subset sufficient for the generated OpenACC validation programs:
function definitions, scalar/array declarations, `for`/`while`/`if`, the
usual expression grammar, calls, and ``#pragma acc`` directives (with
backslash continuations).
"""

from repro.minic.lexer import tokenize
from repro.minic.parser import parse_program, parse_expression_text

__all__ = ["tokenize", "parse_program", "parse_expression_text"]
