"""mini-C recursive-descent parser.

Parses the C subset used by the generated validation programs into the
shared AST (:mod:`repro.ir.astnodes`).  OpenACC pragmas become structured
:class:`AccConstruct` / :class:`AccLoop` / :class:`AccStandalone` nodes;
``loop``-family directives must be followed by a *canonical* counted loop
(the shape every listing in the paper uses), which is normalised into the
:class:`For` node.  Non-canonical ``for`` loops elsewhere are desugared to
``while`` form.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.directives import DirectiveParser
from repro.frontend.errors import ParseError
from repro.frontend.tokens import Token, TokenKind, TokenStream, rebase_tokens
from repro.ir.acc import Directive
from repro.ir.astnodes import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Conditional,
    Continue,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncParam,
    Function,
    Ident,
    If,
    Index,
    IntLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarDecl,
    While,
)
from repro.ir.types import C_TYPE_NAMES, Type
from repro.minic.lexer import tokenize

_SIZEOF = {"int": 4, "long": 8, "float": 4, "double": 8, "char": 1, "bool": 4}

_REGION_KINDS = {"parallel", "kernels", "data", "host_data"}
_LOOP_KINDS = {"loop", "parallel loop", "kernels loop"}
_STANDALONE_KINDS = {"update", "wait", "cache", "enter data", "exit data"}
_FUNCSCOPE_KINDS = {"declare", "routine"}


def parse_program(source: str, filename: str = "<c>", name: str = "<anonymous>") -> Program:
    """Parse a translation unit of mini-C."""
    parser = CParser(tokenize(source, filename))
    return parser.parse_program(name)


def parse_expression_text(source: str) -> Expr:
    """Parse a standalone C expression (used in clause templates and tests)."""
    parser = CParser(tokenize(source, "<expr>"))
    expr = parser.parse_expression(parser.ts)
    if not parser.ts.at_end():
        raise ParseError("trailing tokens after expression", parser.ts.current.loc)
    return expr


class CParser:
    def __init__(self, tokens: List[Token]):
        self.ts = TokenStream(tokens)
        self._directive_parser = DirectiveParser(
            parse_expr=self.parse_expression, fortran_sections=False
        )
        self._current_function: Optional[Function] = None

    # ------------------------------------------------------------------ top

    def parse_program(self, name: str) -> Program:
        program = Program(language="c", name=name)
        pending_declares: List[Directive] = []
        while not self.ts.at_end():
            if self.ts.current.kind is TokenKind.PRAGMA:
                directive = self._parse_directive_token(self.ts.advance())
                if directive.kind in _FUNCSCOPE_KINDS:
                    pending_declares.append(directive)
                    continue
                raise ParseError(
                    f"directive {directive.kind!r} not allowed at file scope",
                    self.ts.current.loc,
                )
            if self.ts.current.is_op(";"):
                self.ts.advance()
                continue
            if not self._at_type():
                raise ParseError(
                    f"expected declaration or function, found {self.ts.current.text!r}",
                    self.ts.current.loc,
                )
            # lookahead: type ident '(' => function definition
            save = self.ts.pos
            ctype = self._parse_type()
            name_tok = self.ts.expect_ident()
            if self.ts.current.is_op("("):
                fn = self._parse_function(ctype, name_tok)
                fn.declares.extend(pending_declares)
                pending_declares = []
                program.functions.append(fn)
            else:
                self.ts.pos = save
                decl_stmt = self._parse_declaration()
                program.globals.extend(decl_stmt.decls)
        return program

    # ------------------------------------------------------------- functions

    def _parse_function(self, return_type: Type, name_tok: Token) -> Function:
        fn = Function(name=name_tok.text, return_type=return_type, loc=name_tok.loc)
        self.ts.expect_op("(")
        if not self.ts.current.is_op(")"):
            if self.ts.current.is_keyword("void") and self.ts.peek(1).is_op(")"):
                self.ts.advance()
            else:
                fn.params.append(self._parse_param())
                while self.ts.match_op(","):
                    fn.params.append(self._parse_param())
        self.ts.expect_op(")")
        prev = self._current_function
        self._current_function = fn
        try:
            fn.body = self._parse_block()
        finally:
            self._current_function = prev
        return fn

    def _parse_param(self) -> FuncParam:
        ptype = self._parse_type()
        name_tok = self.ts.expect_ident()
        is_array = False
        if self.ts.match_op("["):
            if not self.ts.current.is_op("]"):
                self.parse_expression(self.ts)  # declared extent is ignored
            self.ts.expect_op("]")
            is_array = True
        if ptype.pointer:
            is_array = True
        return FuncParam(name=name_tok.text, type=ptype, is_array=is_array, loc=name_tok.loc)

    # ------------------------------------------------------------ statements

    def _parse_block(self) -> Block:
        open_tok = self.ts.expect_op("{")
        block = Block(loc=open_tok.loc)
        while not self.ts.current.is_op("}"):
            if self.ts.at_end():
                raise ParseError("unterminated block", open_tok.loc)
            stmt = self._parse_statement()
            if stmt is not None:
                block.stmts.append(stmt)
        self.ts.expect_op("}")
        return block

    def _parse_statement(self) -> Optional[Stmt]:
        tok = self.ts.current

        if tok.kind is TokenKind.PRAGMA:
            self.ts.advance()
            return self._parse_acc_statement(tok)

        if tok.is_op("{"):
            return self._parse_block()

        if tok.is_op(";"):
            self.ts.advance()
            return None

        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("return"):
            self.ts.advance()
            value = None
            if not self.ts.current.is_op(";"):
                value = self.parse_expression(self.ts)
            self.ts.expect_op(";")
            return Return(value=value, loc=tok.loc)
        if tok.is_keyword("break"):
            self.ts.advance()
            self.ts.expect_op(";")
            return Break(loc=tok.loc)
        if tok.is_keyword("continue"):
            self.ts.advance()
            self.ts.expect_op(";")
            return Continue(loc=tok.loc)

        if self._at_type():
            return self._parse_declaration()

        stmt = self._parse_expr_or_assign()
        self.ts.expect_op(";")
        return stmt

    def _parse_acc_statement(self, pragma_tok: Token) -> Stmt:
        directive = self._parse_directive_token(pragma_tok)
        kind = directive.kind
        if kind in _REGION_KINDS:
            body = self._parse_statement()
            if body is None:
                body = Block()
            return AccConstruct(directive=directive, body=body, loc=pragma_tok.loc)
        if kind in _LOOP_KINDS:
            stmt = self._parse_following_loop(pragma_tok)
            loop = _extract_canonical_for(stmt)
            acc_loop = AccLoop(directive=directive, loop=loop, loc=pragma_tok.loc)
            if isinstance(stmt, Block):
                # keep the induction-variable declaration from `for (int i = ...)`
                return Block(stmts=stmt.stmts[:-1] + [acc_loop], loc=stmt.loc)
            return acc_loop
        if kind in _STANDALONE_KINDS:
            return AccStandalone(directive=directive, loc=pragma_tok.loc)
        if kind in _FUNCSCOPE_KINDS:
            if self._current_function is not None:
                self._current_function.declares.append(directive)
                return None  # type: ignore[return-value]
            raise ParseError("declare directive outside function", pragma_tok.loc)
        raise ParseError(f"unsupported directive {kind!r}", pragma_tok.loc)

    def _parse_following_loop(self, pragma_tok: Token) -> Stmt:
        # loop directives bind tightly to the following for statement
        if not self.ts.current.is_keyword("for"):
            raise ParseError(
                "OpenACC loop directive must be followed by a for loop",
                pragma_tok.loc,
            )
        stmt = self._parse_for()
        if _extract_canonical_for(stmt) is None:
            raise ParseError(
                "OpenACC loop directive requires a canonical counted loop",
                pragma_tok.loc,
            )
        return stmt

    def _parse_directive_token(self, tok: Token) -> Directive:
        sub_tokens = tokenize(tok.text, tok.loc.filename)
        column = tok.value if isinstance(tok.value, int) else 1
        ts = TokenStream(rebase_tokens(sub_tokens, tok.loc, column))
        return self._directive_parser.parse(ts, source=f"#pragma acc {tok.text}")

    def _parse_if(self) -> If:
        tok = self.ts.expect_keyword("if")
        self.ts.expect_op("(")
        cond = self.parse_expression(self.ts)
        self.ts.expect_op(")")
        then = self._parse_statement() or Block()
        other: Optional[Stmt] = None
        if self.ts.current.is_keyword("else"):
            self.ts.advance()
            other = self._parse_statement() or Block()
        return If(cond=cond, then=then, other=other, loc=tok.loc)

    def _parse_while(self) -> While:
        tok = self.ts.expect_keyword("while")
        self.ts.expect_op("(")
        cond = self.parse_expression(self.ts)
        self.ts.expect_op(")")
        body = self._parse_statement() or Block()
        return While(cond=cond, body=body, loc=tok.loc)

    def _parse_for(self) -> Stmt:
        """Parse a ``for`` and normalise canonical counted loops to For."""
        tok = self.ts.expect_keyword("for")
        self.ts.expect_op("(")

        init_decl: Optional[DeclStmt] = None
        init_assign: Optional[Assign] = None
        if self.ts.current.is_op(";"):
            self.ts.advance()
        elif self._at_type():
            init_decl = self._parse_declaration()  # consumes ';'
        else:
            stmt = self._parse_expr_or_assign()
            if not isinstance(stmt, Assign):
                raise ParseError("for-init must be an assignment", tok.loc)
            init_assign = stmt
            self.ts.expect_op(";")

        cond: Optional[Expr] = None
        if not self.ts.current.is_op(";"):
            cond = self.parse_expression(self.ts)
        self.ts.expect_op(";")

        post: Optional[Assign] = None
        if not self.ts.current.is_op(")"):
            stmt = self._parse_expr_or_assign()
            if not isinstance(stmt, Assign):
                raise ParseError("for-post must be an assignment", tok.loc)
            post = stmt
        self.ts.expect_op(")")

        body = self._parse_statement() or Block()

        canonical = _normalize_for(init_decl, init_assign, cond, post, body, tok)
        if canonical is not None:
            return canonical
        # Desugar general for into init; while(cond){ body; post; }
        stmts: List[Stmt] = []
        if init_decl is not None:
            stmts.append(init_decl)
        if init_assign is not None:
            stmts.append(init_assign)
        loop_body = Block(stmts=[body] + ([post] if post else []))
        stmts.append(While(cond=cond or IntLit(1), body=loop_body, loc=tok.loc))
        return Block(stmts=stmts, loc=tok.loc)

    # ----------------------------------------------------------- declarations

    def _at_type(self) -> bool:
        tok = self.ts.current
        if tok.is_keyword("const", "static", "unsigned", "signed"):
            return True
        return tok.is_keyword(*C_TYPE_NAMES)

    def _parse_type(self) -> Type:
        while self.ts.current.is_keyword("const", "static", "unsigned", "signed"):
            self.ts.advance()
        tok = self.ts.current
        if not tok.is_keyword(*C_TYPE_NAMES):
            raise ParseError(f"expected type name, found {tok.text!r}", tok.loc)
        self.ts.advance()
        base = C_TYPE_NAMES[tok.text]
        # "long long", "long int" etc.
        while self.ts.current.is_keyword("int", "long") and base.base == "long":
            self.ts.advance()
        pointer = 0
        while self.ts.match_op("*"):
            pointer += 1
        return Type(base.base, pointer)

    def _parse_declaration(self) -> DeclStmt:
        start = self.ts.current
        base = self._parse_type()
        decls: List[VarDecl] = []
        while True:
            ptr_extra = 0
            while self.ts.match_op("*"):
                ptr_extra += 1
            name_tok = self.ts.expect_ident()
            dims: List[Expr] = []
            while self.ts.match_op("["):
                dims.append(self.parse_expression(self.ts))
                self.ts.expect_op("]")
            init: Optional[Expr] = None
            if self.ts.match_op("="):
                init = self.parse_expression(self.ts)
            decls.append(
                VarDecl(
                    name=name_tok.text,
                    type=Type(base.base, base.pointer + ptr_extra),
                    dims=dims,
                    init=init,
                    loc=name_tok.loc,
                )
            )
            if not self.ts.match_op(","):
                break
        self.ts.expect_op(";")
        return DeclStmt(decls=decls, loc=start.loc)

    # ------------------------------------------------------------ expressions

    def _parse_expr_or_assign(self) -> Stmt:
        tok = self.ts.current
        if tok.is_op("++", "--"):
            self.ts.advance()
            target = self._parse_unary(self.ts)
            return Assign(target=target, value=IntLit(1), op="+" if tok.text == "++" else "-", loc=tok.loc)
        expr = self.parse_expression(self.ts)
        cur = self.ts.current
        if cur.is_op("="):
            self.ts.advance()
            value = self.parse_expression(self.ts)
            return Assign(target=expr, value=value, op="", loc=cur.loc)
        if cur.is_op("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="):
            self.ts.advance()
            value = self.parse_expression(self.ts)
            return Assign(target=expr, value=value, op=cur.text[:-1], loc=cur.loc)
        if cur.is_op("++", "--"):
            self.ts.advance()
            return Assign(target=expr, value=IntLit(1), op="+" if cur.text == "++" else "-", loc=cur.loc)
        return ExprStmt(expr=expr, loc=tok.loc)

    # Pratt-style precedence climbing.
    _BINARY_PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_expression(self, ts: TokenStream) -> Expr:
        return self._parse_conditional(ts)

    def _parse_conditional(self, ts: TokenStream) -> Expr:
        cond = self._parse_binary(ts, 0)
        if ts.current.is_op("?"):
            tok = ts.advance()
            then = self.parse_expression(ts)
            ts.expect_op(":")
            other = self._parse_conditional(ts)
            return Conditional(cond=cond, then=then, other=other, loc=tok.loc)
        return cond

    def _parse_binary(self, ts: TokenStream, level: int) -> Expr:
        if level >= len(self._BINARY_PRECEDENCE):
            return self._parse_unary(ts)
        ops = self._BINARY_PRECEDENCE[level]
        left = self._parse_binary(ts, level + 1)
        while ts.current.is_op(*ops):
            tok = ts.advance()
            right = self._parse_binary(ts, level + 1)
            left = Binary(op=tok.text, left=left, right=right, loc=tok.loc)
        return left

    def _parse_unary(self, ts: TokenStream) -> Expr:
        tok = ts.current
        if tok.is_op("-", "+", "!", "~", "*", "&"):
            ts.advance()
            operand = self._parse_unary(ts)
            if tok.text == "+":
                return operand
            return Unary(op=tok.text, operand=operand, loc=tok.loc)
        if tok.is_keyword("sizeof"):
            ts.advance()
            ts.expect_op("(")
            inner = self._parse_type()
            ts.expect_op(")")
            return IntLit(_SIZEOF[inner.base] if inner.pointer == 0 else 8, loc=tok.loc)
        if tok.is_op("(") and self._paren_is_cast(ts):
            ts.advance()
            ctype = self._parse_type()
            ts.expect_op(")")
            operand = self._parse_unary(ts)
            return Cast(type=ctype, operand=operand, loc=tok.loc)
        return self._parse_postfix(ts)

    def _paren_is_cast(self, ts: TokenStream) -> bool:
        nxt = ts.peek(1)
        return nxt.is_keyword(*C_TYPE_NAMES) or nxt.is_keyword(
            "const", "unsigned", "signed"
        )

    def _parse_postfix(self, ts: TokenStream) -> Expr:
        expr = self._parse_primary(ts)
        while True:
            if ts.current.is_op("["):
                tok = ts.advance()
                index = self.parse_expression(ts)
                ts.expect_op("]")
                if isinstance(expr, Index):
                    expr.indices.append(index)
                else:
                    expr = Index(base=expr, indices=[index], loc=tok.loc)
            elif ts.current.is_op("(") and isinstance(expr, Ident):
                tok = ts.advance()
                args: List[Expr] = []
                if not ts.current.is_op(")"):
                    args.append(self.parse_expression(ts))
                    while ts.match_op(","):
                        args.append(self.parse_expression(ts))
                ts.expect_op(")")
                expr = Call(name=expr.name, args=args, loc=tok.loc)
            else:
                return expr

    def _parse_primary(self, ts: TokenStream) -> Expr:
        tok = ts.current
        if tok.kind is TokenKind.INT:
            ts.advance()
            return IntLit(value=tok.value, loc=tok.loc)
        if tok.kind is TokenKind.FLOAT:
            ts.advance()
            value, single = tok.value
            return FloatLit(value=value, single=single, loc=tok.loc)
        if tok.kind is TokenKind.STRING:
            ts.advance()
            return StringLit(value=tok.value, loc=tok.loc)
        if tok.kind is TokenKind.IDENT:
            ts.advance()
            return Ident(name=tok.text, loc=tok.loc)
        if tok.is_op("("):
            ts.advance()
            expr = self.parse_expression(ts)
            ts.expect_op(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.loc)


# ---------------------------------------------------------------------------
# canonical loop normalisation
# ---------------------------------------------------------------------------

def _normalize_for(
    init_decl: Optional[DeclStmt],
    init_assign: Optional[Assign],
    cond: Optional[Expr],
    post: Optional[Assign],
    body: Stmt,
    tok: Token,
) -> Optional[Stmt]:
    """Recognise ``for (i = lo; i REL hi; i STEP)`` and build a For node.

    Returns None if the loop is not canonical.  When the induction variable
    is declared in the init, the declaration wraps the loop in a Block.
    """
    var: Optional[str] = None
    start: Optional[Expr] = None
    wrapper_decl: Optional[DeclStmt] = None

    if init_decl is not None:
        if len(init_decl.decls) != 1 or init_decl.decls[0].init is None:
            return None
        decl = init_decl.decls[0]
        var, start = decl.name, decl.init
        wrapper_decl = DeclStmt(
            decls=[VarDecl(name=decl.name, type=decl.type, loc=decl.loc)],
            loc=init_decl.loc,
        )
    elif init_assign is not None:
        if not isinstance(init_assign.target, Ident) or init_assign.op:
            return None
        var, start = init_assign.target.name, init_assign.value
    else:
        return None

    if cond is None or not isinstance(cond, Binary):
        return None
    if not isinstance(cond.left, Ident) or cond.left.name != var:
        return None
    if cond.op not in ("<", "<=", ">", ">="):
        return None
    bound = cond.right
    inclusive = cond.op in ("<=", ">=")
    descending = cond.op in (">", ">=")

    if post is None or not isinstance(post.target, Ident) or post.target.name != var:
        return None
    step: Optional[Expr] = None
    if post.op == "+":
        step = post.value
    elif post.op == "-":
        step = Unary(op="-", operand=post.value)
    elif post.op == "" and isinstance(post.value, Binary):
        b = post.value
        if isinstance(b.left, Ident) and b.left.name == var and b.op in ("+", "-"):
            step = b.right if b.op == "+" else Unary(op="-", operand=b.right)
    if step is None:
        return None
    if descending and not (isinstance(step, Unary) and step.op == "-"):
        # ascending step with a '>' condition is not canonical
        return None

    loop = For(
        var=var,
        start=start,
        bound=bound,
        step=step,
        body=body,
        inclusive=inclusive,
        loc=tok.loc,
    )
    if wrapper_decl is not None:
        return Block(stmts=[wrapper_decl, loop], loc=tok.loc)
    return loop


def _extract_canonical_for(stmt: Stmt) -> Optional[For]:
    """Unwrap the For from a possibly Block-wrapped canonical loop."""
    if isinstance(stmt, For):
        return stmt
    if isinstance(stmt, Block) and stmt.stmts:
        last = stmt.stmts[-1]
        if isinstance(last, For) and all(
            isinstance(s, DeclStmt) for s in stmt.stmts[:-1]
        ):
            return last
    return None
