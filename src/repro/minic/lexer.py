"""mini-C lexer.

Produces :class:`repro.frontend.tokens.Token` sequences.  ``#pragma acc``
lines (including backslash continuations, as used by the paper's listings,
e.g. Fig. 4) become single :data:`TokenKind.PRAGMA` tokens whose text is the
directive payload after the ``acc`` sentinel.  Other preprocessor lines
(``#include`` etc.) are skipped — the generated programs are self-contained.
"""

from __future__ import annotations

import re
from typing import List

from repro.frontend.errors import LexError
from repro.frontend.tokens import Token, TokenKind
from repro.ir.astnodes import SourceLocation

C_KEYWORDS = frozenset(
    """
    int long float double char void if else for while do return break
    continue sizeof static const unsigned signed struct
    """.split()
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", ".",
]

_NUMBER_RE = re.compile(
    r"""
    (?P<hex>0[xX][0-9a-fA-F]+)
    | (?P<float>
        (?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)(?:[fFlL])?
        | (?:\d+\.\d*|\.\d+)(?:[fFlL])?
        | \d+[fF]
      )
    | (?P<int>\d+[uUlL]*)
    """,
    re.VERBOSE,
)

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def tokenize(source: str, filename: str = "<c>") -> List[Token]:
    """Tokenize mini-C source text."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def loc() -> SourceLocation:
        return SourceLocation(filename, line, col)

    def bump(text: str) -> None:
        nonlocal line, col
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)

    while i < n:
        ch = source[i]

        # whitespace
        if ch in " \t\r\n":
            bump(ch)
            i += 1
            continue

        # comments
        if source.startswith("//", i):
            end = source.find("\n", i)
            end = n if end == -1 else end
            bump(source[i:end])
            i = end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", loc())
            bump(source[i : end + 2])
            i = end + 2
            continue

        # preprocessor lines
        if ch == "#" and (col == 1 or source[i - 1] == "\n" or _only_ws_before(source, i)):
            start_loc = loc()
            j = i
            # glue backslash continuations
            while True:
                end = source.find("\n", j)
                end = n if end == -1 else end
                stripped = source[j:end].rstrip()
                if stripped.endswith("\\"):
                    j = end + 1
                    if j >= n:
                        break
                else:
                    break
            full = source[i:end].replace("\\\n", " ").replace("\\\r\n", " ")
            bump(source[i:end])
            i = end
            m = re.match(r"\s*#\s*pragma\s+acc\b(.*)", full, re.DOTALL)
            if m:
                payload = m.group(1)
                # absolute column of the directive payload, so the sub-lexed
                # tokens can be rebased onto real source positions
                pad = len(payload) - len(payload.lstrip())
                payload_col = start_loc.column + m.start(1) + pad
                tokens.append(
                    Token(TokenKind.PRAGMA, payload.strip(), start_loc,
                          value=payload_col)
                )
            # any other preprocessor directive is ignored
            continue

        # string literal
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", loc())
            text = source[i : j + 1]
            tokens.append(Token(TokenKind.STRING, text, loc(), value=_unescape(text[1:-1])))
            bump(text)
            i = j + 1
            continue

        # char literal -> int token
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                j += 1
            j += 1
            if j >= n or source[j] != "'":
                raise LexError("unterminated char literal", loc())
            text = source[i : j + 1]
            tokens.append(
                Token(TokenKind.INT, text, loc(), value=ord(_unescape(text[1:-1])))
            )
            bump(text)
            i = j + 1
            continue

        # number
        m = _NUMBER_RE.match(source, i)
        if m and m.start() == i and (ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit())):
            text = m.group(0)
            start_loc = loc()
            if m.lastgroup == "hex":
                tokens.append(Token(TokenKind.INT, text, start_loc, value=int(text, 16)))
            elif m.lastgroup == "float":
                stripped = text.rstrip("fFlL")
                single = text[-1] in "fF"
                tokens.append(
                    Token(TokenKind.FLOAT, text, start_loc, value=(float(stripped), single))
                )
            else:
                tokens.append(
                    Token(TokenKind.INT, text, start_loc, value=int(text.rstrip("uUlL")))
                )
            bump(text)
            i = m.end()
            continue

        # identifier / keyword
        m = _IDENT_RE.match(source, i)
        if m:
            text = m.group(0)
            kind = TokenKind.KEYWORD if text in C_KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, loc()))
            bump(text)
            i = m.end()
            continue

        # operator / punctuation
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, loc()))
                bump(op)
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", loc())

    tokens.append(Token(TokenKind.EOF, "", loc()))
    return tokens


def _only_ws_before(source: str, i: int) -> bool:
    j = i - 1
    while j >= 0 and source[j] in " \t":
        j -= 1
    return j < 0 or source[j] == "\n"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"', "'": "'"}


def _unescape(body: str) -> str:
    out = []
    i = 0
    while i < len(body):
        if body[i] == "\\" and i + 1 < len(body):
            out.append(_ESCAPES.get(body[i + 1], body[i + 1]))
            i += 2
        else:
            out.append(body[i])
            i += 1
    return "".join(out)
