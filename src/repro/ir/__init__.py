"""Shared intermediate representation.

Both frontends (:mod:`repro.minic` and :mod:`repro.minifort`) lower their
surface syntax to the AST defined in :mod:`repro.ir.astnodes`; OpenACC
directives are represented by the clause model in :mod:`repro.ir.acc`.
Everything downstream of the parsers (interpreter, lowering, vendor bug
injection) is language-agnostic and operates on this IR.
"""

from repro.ir.types import Type, INT, LONG, FLOAT, DOUBLE, VOID, CHAR, BOOL
from repro.ir.astnodes import (
    Node,
    Expr,
    IntLit,
    FloatLit,
    StringLit,
    Ident,
    Index,
    Slice,
    Call,
    Unary,
    Binary,
    Conditional,
    Cast,
    Stmt,
    Block,
    VarDecl,
    DeclStmt,
    Assign,
    ExprStmt,
    If,
    For,
    While,
    Break,
    Continue,
    Return,
    AccConstruct,
    AccLoop,
    AccStandalone,
    FuncParam,
    Function,
    Program,
    SourceLocation,
    walk,
)
from repro.ir.acc import (
    Directive,
    Clause,
    DataRef,
    Section,
    DIRECTIVE_KINDS,
    DATA_CLAUSES,
    normalize_clause_name,
)

__all__ = [
    "Type", "INT", "LONG", "FLOAT", "DOUBLE", "VOID", "CHAR", "BOOL",
    "Node", "Expr", "IntLit", "FloatLit", "StringLit", "Ident", "Index",
    "Slice", "Call", "Unary", "Binary", "Conditional", "Cast",
    "Stmt", "Block", "VarDecl", "DeclStmt", "Assign", "ExprStmt", "If",
    "For", "While", "Break", "Continue", "Return",
    "AccConstruct", "AccLoop", "AccStandalone",
    "FuncParam", "Function", "Program", "SourceLocation", "walk",
    "Directive", "Clause", "DataRef", "Section",
    "DIRECTIVE_KINDS", "DATA_CLAUSES", "normalize_clause_name",
]
