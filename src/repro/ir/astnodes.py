"""Language-agnostic abstract syntax tree.

The mini-C and mini-Fortran parsers both produce this AST; the interpreter,
the OpenACC lowering and the vendor bug-injection hooks all operate on it.
Nodes are plain dataclasses; no behaviour lives here beyond generic traversal
(:func:`walk`) so that compiler passes stay free to interpret structure as
they need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator, List, Optional, Sequence, Union

from repro.ir.types import Type


@dataclass(frozen=True)
class SourceLocation:
    """Position of a construct in the original (generated) source file."""

    filename: str = "<unknown>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass
class Node:
    """Base class for all AST nodes."""

    loc: SourceLocation = field(default_factory=SourceLocation, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float
    # Whether the literal was written single precision (``1.0f`` in C,
    # default ``real`` in Fortran); drives rounding in the interpreter.
    single: bool = False


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Slice(Expr):
    """An array section ``[start:length]`` (only valid inside data clauses)."""

    start: Optional[Expr]
    length: Optional[Expr]


@dataclass
class Index(Expr):
    """Array subscript ``base[i0][i1]...`` / ``base(i0, i1)``."""

    base: Expr
    indices: List[Expr]


@dataclass
class Call(Expr):
    name: str
    args: List[Expr]


@dataclass
class Unary(Expr):
    op: str  # '-', '+', '!', '~'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic, comparison, logical, bitwise, '%', '**'
    left: Expr
    right: Expr


@dataclass
class Conditional(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Cast(Expr):
    type: Type
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Node):
    """A single declared variable (possibly an array).

    ``dims`` holds per-dimension *extents*; ``lowers`` the per-dimension
    lower bounds (C arrays are 0-based with ``lowers`` empty, Fortran arrays
    default to 1-based and may declare explicit bounds like ``a(0:n-1)``).
    """

    name: str
    type: Type
    dims: List[Expr] = field(default_factory=list)  # empty for scalars
    init: Optional[Expr] = None
    lowers: List[Optional[Expr]] = field(default_factory=list)


@dataclass
class DeclStmt(Stmt):
    decls: List[VarDecl] = field(default_factory=list)


@dataclass
class Assign(Stmt):
    """``target op= value``; ``op`` is '' for plain assignment."""

    target: Expr  # Ident or Index
    value: Expr
    op: str = ""  # '', '+', '-', '*', '/', '%', '&', '|', '^'


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class For(Stmt):
    """A canonical counted loop.

    Both C ``for(i = lo; i < hi; i++)`` and Fortran ``do i = lo, hi`` are
    normalised to this shape; the bounds are re-evaluated on entry.
    ``step`` may be negative.  ``inclusive`` distinguishes Fortran ``do``
    (upper bound included) from the C idiom (excluded, with ``<``/``<=``
    folded into ``bound``/``inclusive``).
    """

    var: str
    start: Expr
    bound: Expr
    step: Expr
    body: Stmt
    inclusive: bool = False


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


# ---------------------------------------------------------------------------
# OpenACC statements.  The directive payload itself lives in repro.ir.acc;
# the import is deferred to avoid a cycle.
# ---------------------------------------------------------------------------


@dataclass
class AccConstruct(Stmt):
    """A structured construct: ``parallel``, ``kernels``, ``data``,
    ``host_data`` — a directive applied to a following block."""

    directive: "repro.ir.acc.Directive"
    body: Stmt


@dataclass
class AccLoop(Stmt):
    """A ``loop`` (or combined ``parallel loop`` / ``kernels loop``)
    directive attached to the immediately following :class:`For`."""

    directive: "repro.ir.acc.Directive"
    loop: For


@dataclass
class AccStandalone(Stmt):
    """An executable directive with no body: ``update``, ``wait``,
    ``cache``, ``enter data`` / ``exit data`` (2.0)."""

    directive: "repro.ir.acc.Directive"


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class FuncParam(Node):
    name: str
    type: Type
    is_array: bool = False


@dataclass
class Function(Node):
    name: str
    return_type: Type
    params: List[FuncParam] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    # declare directives attached at function scope
    declares: List["repro.ir.acc.Directive"] = field(default_factory=list)


@dataclass
class Program(Node):
    """A standalone translation unit as produced by the test generator."""

    functions: List[Function] = field(default_factory=list)
    globals: List[VarDecl] = field(default_factory=list)
    language: str = "c"  # 'c' or 'fortran'
    name: str = "<anonymous>"

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r} in program {self.name!r}")

    @property
    def main(self) -> Function:
        return self.function("main")


# ---------------------------------------------------------------------------
# Traversal
# ---------------------------------------------------------------------------

def _children(node: Node) -> Iterator[Node]:
    for f in fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of ``node`` and all AST descendants.

    Directive payloads (clauses, data refs) are :class:`Node` subclasses as
    well and are therefore included.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(_children(current))))
