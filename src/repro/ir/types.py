"""Scalar and array types shared by the mini-C and mini-Fortran frontends.

The type system is deliberately small: the OpenACC validation corpus only
needs integer and floating scalars, fixed/variable length arrays of those,
and opaque device pointers.  Types are interned value objects so they can be
compared with ``==`` and used as dict keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Type:
    """A scalar/pointer type.

    Attributes
    ----------
    base:
        One of ``"int"``, ``"long"``, ``"float"``, ``"double"``, ``"char"``,
        ``"bool"``, ``"void"``.
    pointer:
        Pointer depth (``int*`` has ``pointer == 1``).
    """

    base: str
    pointer: int = 0

    def pointer_to(self) -> "Type":
        """Return the type of a pointer to this type."""
        return Type(self.base, self.pointer + 1)

    def deref(self) -> "Type":
        """Return the pointee type; raises on non-pointers."""
        if self.pointer == 0:
            raise ValueError(f"cannot dereference non-pointer type {self}")
        return Type(self.base, self.pointer - 1)

    @property
    def is_integer(self) -> bool:
        return self.pointer == 0 and self.base in ("int", "long", "char", "bool")

    @property
    def is_floating(self) -> bool:
        return self.pointer == 0 and self.base in ("float", "double")

    @property
    def is_numeric(self) -> bool:
        return self.is_integer or self.is_floating

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.base + "*" * self.pointer


INT = Type("int")
LONG = Type("long")
FLOAT = Type("float")
DOUBLE = Type("double")
CHAR = Type("char")
BOOL = Type("bool")
VOID = Type("void")

#: surface-syntax names accepted by the mini-C parser
C_TYPE_NAMES = {
    "int": INT,
    "long": LONG,
    "float": FLOAT,
    "double": DOUBLE,
    "char": CHAR,
    "void": VOID,
}

#: Fortran declaration keywords mapped onto the shared type lattice.
FORTRAN_TYPE_NAMES = {
    "integer": INT,
    "real": FLOAT,
    "doubleprecision": DOUBLE,
    "logical": BOOL,
}


def join_numeric(a: Type, b: Type) -> Type:
    """Usual arithmetic conversion for binary expressions.

    ``double`` dominates ``float`` dominates integers; among integers
    ``long`` dominates ``int``.
    """
    if not (a.is_numeric and b.is_numeric):
        raise ValueError(f"non-numeric operands {a}, {b}")
    for t in (DOUBLE, FLOAT, LONG):
        if a == t or b == t:
            return t
    return INT
