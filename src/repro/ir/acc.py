"""OpenACC directive and clause model.

A :class:`Directive` is the parsed payload of one ``#pragma acc ...`` /
``!$acc ...`` line: a directive kind plus an ordered clause list.  Clause
arguments are either expressions (``num_gangs(expr)``), data references with
optional sections (``copy(a[0:n])``), or structured pairs (``reduction(+:x)``).

The model is shared by both frontends and is what the lowering, the vendor
bug hooks and the spec-conformance checks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.ir.astnodes import Expr, Node

#: Directive kinds recognised in OpenACC 1.0 (plus the 2.0 additions the
#: framework supports behind a spec-version switch; see repro.spec).
DIRECTIVE_KINDS = (
    "parallel",
    "kernels",
    "data",
    "host_data",
    "loop",
    "parallel loop",
    "kernels loop",
    "cache",
    "declare",
    "update",
    "wait",
    # OpenACC 2.0 forward-looking support
    "enter data",
    "exit data",
    "routine",
)

#: Clauses that take data references and manage device memory.
DATA_CLAUSES = (
    "copy",
    "copyin",
    "copyout",
    "create",
    "present",
    "present_or_copy",
    "present_or_copyin",
    "present_or_copyout",
    "present_or_create",
    "deviceptr",
    "device_resident",
    # update directive data motion clauses
    "host",
    "device",
    # declare-only alias
    "delete",  # 2.0 exit data
)

#: Short spellings the 1.0 spec allows for the present_or_* family.
_CLAUSE_ALIASES = {
    "pcopy": "present_or_copy",
    "pcopyin": "present_or_copyin",
    "pcopyout": "present_or_copyout",
    "pcreate": "present_or_create",
    "self": "host",  # update self(...) == update host(...)
}


def normalize_clause_name(name: str) -> str:
    """Resolve clause spelling aliases (``pcopy`` -> ``present_or_copy``)."""
    return _CLAUSE_ALIASES.get(name, name)


@dataclass
class Section(Node):
    """A subarray section ``[start:length]`` in a data clause."""

    start: Optional[Expr] = None
    length: Optional[Expr] = None


@dataclass
class DataRef(Node):
    """A variable (possibly sectioned) named in a data clause."""

    name: str
    sections: List[Section] = field(default_factory=list)


@dataclass
class Clause(Node):
    """One clause on a directive.

    Exactly one of the payload fields is populated, depending on the clause:

    * ``expr`` — ``if``, ``async``, ``num_gangs``, ``num_workers``,
      ``vector_length``, ``collapse``, ``gang(n)``, ``worker(n)``,
      ``vector(n)``, ``wait(tag)``
    * ``refs`` — data clauses, ``private``, ``firstprivate``, ``use_device``,
      ``cache``
    * ``op`` + ``refs`` — ``reduction(op: vars)``
    * none — bare ``seq``, ``independent``, ``gang``, ``worker``, ``vector``,
      ``auto`` (2.0), ``default(none)`` uses ``op`` to carry the keyword.
    """

    name: str
    expr: Optional[Expr] = None
    refs: List[DataRef] = field(default_factory=list)
    op: Optional[str] = None

    @property
    def var_names(self) -> List[str]:
        return [r.name for r in self.refs]


@dataclass
class Directive(Node):
    """A parsed directive line: kind + clauses."""

    kind: str
    clauses: List[Clause] = field(default_factory=list)
    #: raw source text, kept for bug reports (paper Section III "Results").
    source: str = ""

    def clause(self, name: str) -> Optional[Clause]:
        """First clause with the given (normalised) name, or ``None``."""
        name = normalize_clause_name(name)
        for c in self.clauses:
            if c.name == name:
                return c
        return None

    def clauses_named(self, *names: str) -> List[Clause]:
        wanted = {normalize_clause_name(n) for n in names}
        return [c for c in self.clauses if c.name in wanted]

    def has_clause(self, name: str) -> bool:
        return self.clause(name) is not None

    def data_clauses(self) -> List[Clause]:
        return [c for c in self.clauses if c.name in DATA_CLAUSES]

    def without_clause(self, name: str) -> "Directive":
        """Copy of this directive with all clauses ``name`` removed
        (used by cross-test substitution and bug injection)."""
        name = normalize_clause_name(name)
        return Directive(
            kind=self.kind,
            clauses=[c for c in self.clauses if c.name != name],
            source=self.source,
            loc=self.loc,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.kind]
        for c in self.clauses:
            if c.op is not None and c.refs:
                parts.append(f"{c.name}({c.op}:{','.join(c.var_names)})")
            elif c.refs:
                parts.append(f"{c.name}({','.join(c.var_names)})")
            elif c.expr is not None:
                parts.append(f"{c.name}(...)")
            else:
                parts.append(c.name)
        return " ".join(parts)
