"""Differential comparison of compiler versions.

The paper's vendor feedback loop (Section I): "We identify and report bugs
found in their OpenACC implementations.  The vendors fix them and inform us
when a newer version of the compiler is released.  We then verify if the
issues were resolved."  This module automates the verification step: run
the suite against two versions and classify every feature as fixed,
regressed, still-failing or stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.compiler.vendors import vendor_version
from repro.harness import HarnessConfig, ValidationRunner
from repro.suite import SuiteRegistry, openacc10_suite


@dataclass
class VersionDiff:
    """Feature-level outcome changes between two versions."""

    vendor: str
    old_version: str
    new_version: str
    language: str
    fixed: List[str] = field(default_factory=list)
    regressed: List[str] = field(default_factory=list)
    still_failing: List[str] = field(default_factory=list)
    still_passing: List[str] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return len(self.fixed) > len(self.regressed)

    def summary(self) -> str:
        return (
            f"{self.vendor} {self.old_version} -> {self.new_version} "
            f"[{self.language}]: "
            f"{len(self.fixed)} fixed, {len(self.regressed)} regressed, "
            f"{len(self.still_failing)} still failing"
        )


def compare_versions(
    vendor: str,
    old_version: str,
    new_version: str,
    language: str,
    suite: Optional[SuiteRegistry] = None,
    config: Optional[HarnessConfig] = None,
) -> VersionDiff:
    """Run the suite against both versions and diff the outcomes."""
    suite = suite or openacc10_suite()
    if config is None:
        config = HarnessConfig(iterations=1, run_cross=False)
    config.languages = (language,)

    outcomes = {}
    for version in (old_version, new_version):
        vv = vendor_version(vendor, version)
        report = ValidationRunner(vv.behavior(language), config).run_suite(suite)
        outcomes[version] = {r.feature: r.passed for r in report.results}

    diff = VersionDiff(
        vendor=vendor, old_version=old_version, new_version=new_version,
        language=language,
    )
    for feature, old_pass in sorted(outcomes[old_version].items()):
        new_pass = outcomes[new_version].get(feature, old_pass)
        if old_pass and new_pass:
            diff.still_passing.append(feature)
        elif old_pass and not new_pass:
            diff.regressed.append(feature)
        elif not old_pass and new_pass:
            diff.fixed.append(feature)
        else:
            diff.still_failing.append(feature)
    return diff
