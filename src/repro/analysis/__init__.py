"""Evaluation analysis: assembling Table I and Fig. 8 from suite runs."""

from repro.analysis.passrates import (
    PassRatePoint,
    vendor_pass_rates,
    run_vendor_version,
)
from repro.analysis.bugs import (
    BugCountRow,
    table1_counts,
    PAPER_TABLE1,
    detected_bug_ids,
)
from repro.analysis.diffs import VersionDiff, compare_versions

__all__ = [
    "PassRatePoint", "vendor_pass_rates", "run_vendor_version",
    "BugCountRow", "table1_counts", "PAPER_TABLE1", "detected_bug_ids",
    "VersionDiff", "compare_versions",
]
