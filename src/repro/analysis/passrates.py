"""Pass-rate sweeps across vendor versions (Fig. 8a/8b/8c data)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.compiler.vendors import VendorVersion, vendor_versions
from repro.harness import HarnessConfig, SuiteRunReport, ValidationRunner
from repro.suite import SuiteRegistry, openacc10_suite


@dataclass
class PassRatePoint:
    """One bar of one Fig. 8 plot."""

    vendor: str
    version: str
    language: str
    pass_rate: float
    tests: int
    failures: int
    report: SuiteRunReport


def run_vendor_version(
    vv: VendorVersion,
    language: str,
    suite: Optional[SuiteRegistry] = None,
    config: Optional[HarnessConfig] = None,
    tracer=None,
) -> PassRatePoint:
    """Run the suite against one vendor version's language frontend.

    ``tracer`` (a :class:`repro.obs.Tracer`, optional) records the run as
    one ``run[...]`` span tree per call — passing the same tracer across
    calls accumulates the whole sweep in a single trace.
    """
    suite = suite or openacc10_suite()
    config = config or HarnessConfig(iterations=1, run_cross=False)
    # narrow to this language on a copy: the caller's config is shared
    # across every (version, language) cell of a sweep, and mutating it
    # left all cells after the first pinned to the first language
    config = replace(config, languages=(language,))
    runner = ValidationRunner(vv.behavior(language), config, tracer=tracer)
    report = runner.run_suite(suite)
    pool = report.for_language(language)
    return PassRatePoint(
        vendor=vv.vendor,
        version=vv.version,
        language=language,
        pass_rate=report.pass_rate(language),
        tests=len(pool),
        failures=len(report.failures(language)),
        report=report,
    )


def vendor_pass_rates(
    vendor: str,
    suite: Optional[SuiteRegistry] = None,
    config: Optional[HarnessConfig] = None,
    languages=("c", "fortran"),
) -> Dict[str, List[PassRatePoint]]:
    """All bars of one Fig. 8 subplot: {language: [point per version]}."""
    out: Dict[str, List[PassRatePoint]] = {lang: [] for lang in languages}
    for vv in vendor_versions(vendor):
        for lang in languages:
            out[lang].append(run_vendor_version(vv, lang, suite, config))
    return out
