"""Bug counting (Table I) and bug-detection attribution.

``table1_counts`` reads the calibrated vendor inventories (what Table I
tabulates: "bugs identified in different compilers").
``detected_bug_ids`` cross-checks the inventory against an actual suite
run: a bug is *detected* when at least one test of a feature it affects
fails (directly, or collaterally via a failing dependence) — the property
the whole testsuite exists to provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.compiler.vendors import VendorVersion, vendor_versions
from repro.harness.runner import SuiteRunReport

#: Table I of the paper, transcribed: {vendor: {version: (C, Fortran)}}
PAPER_TABLE1: Dict[str, Dict[str, Tuple[int, int]]] = {
    "caps": {
        "3.0.7": (36, 32), "3.0.8": (24, 70), "3.1.0": (20, 15),
        "3.2.3": (1, 1), "3.2.4": (1, 1), "3.3.0": (1, 0),
        "3.3.3": (0, 0), "3.3.4": (0, 0),
    },
    "pgi": {
        "12.6": (8, 14), "12.8": (8, 14), "12.9": (7, 14),
        "12.10": (6, 14), "13.2": (6, 14), "13.4": (5, 13),
        "13.6": (5, 13), "13.8": (5, 13),
    },
    "cray": {
        "8.1.2": (16, 6), "8.1.3": (16, 6), "8.1.4": (16, 6),
        "8.1.5": (16, 6), "8.1.6": (16, 6), "8.1.7": (16, 5),
        "8.1.8": (16, 5), "8.2.0": (16, 5),
    },
}


@dataclass
class BugCountRow:
    vendor: str
    version: str
    c_bugs: int
    fortran_bugs: int

    @property
    def paper_counts(self) -> Tuple[int, int]:
        return PAPER_TABLE1[self.vendor][self.version]

    @property
    def matches_paper(self) -> bool:
        return (self.c_bugs, self.fortran_bugs) == self.paper_counts


def table1_counts(vendor: str) -> List[BugCountRow]:
    return [
        BugCountRow(
            vendor=vv.vendor,
            version=vv.version,
            c_bugs=vv.bug_count("c"),
            fortran_bugs=vv.bug_count("fortran"),
        )
        for vv in vendor_versions(vendor)
    ]


def detected_bug_ids(
    vv: VendorVersion, language: str, report: SuiteRunReport
) -> Set[str]:
    """Bug ids whose affected features include a failing test's feature or
    one of its declared dependences."""
    failing: Set[str] = set()
    for result in report.failures(language):
        failing.add(result.feature)
        failing.update(result.template.dependences)
    detected: Set[str] = set()
    for bug in vv.bugs(language):
        if any(feature in failing for feature in bug.affects):
            detected.add(bug.bug_id)
    return detected
