#!/usr/bin/env python3
"""Quickstart: validate a few OpenACC features against the reference
implementation.

Walks the core workflow in five steps:

1. pick templates from the 1.0 corpus (feature selection);
2. run them through the validation harness (functional -> cross, repeated
   M times, with the paper's certainty statistic);
3. print the plain-text report.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH already set)
except ModuleNotFoundError:  # source checkout: resolve src/ from this file
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness import HarnessConfig, ValidationRunner, render_text
from repro.suite import openacc10_suite


def main() -> None:
    suite = openacc10_suite()
    print(f"loaded the OpenACC 1.0 corpus: {len(suite)} templates "
          f"covering {len(suite.features())} features\n")

    # 1. feature selection (Section III: "User can choose to test the
    #    directives, their clauses or any other feature")
    templates = suite.select(
        languages=["c"],
        features=[
            "loop",                 # the Fig. 2 work-sharing test
            "parallel.num_gangs",   # the Fig. 9 gang-count reduction
            "data.copy",            # the Fig. 6 data-movement test
            "parallel.async",       # the Fig. 10 async test
        ],
    )
    print("selected templates:")
    for template in templates:
        print(f"  {template.feature:22s} — {template.description[:60]}...")

    # 2. run the harness: M = 3 iterations per program
    runner = ValidationRunner(config=HarnessConfig(iterations=3))
    report = runner.run_suite(suite, templates=templates)

    # 3. report
    print()
    print(render_text(report))

    for result in report.results:
        status = "validated" if result.certainty == 1.0 else "functional-only"
        print(f"{result.feature:22s} certainty {result.certainty:6.1%}  ({status})")


if __name__ == "__main__":
    main()
