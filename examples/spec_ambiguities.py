#!/usr/bin/env python3
"""Explore the OpenACC 1.0 specification ambiguities of the paper.

Section I motivates the suite with a specification ambiguity (Fig. 1: "can
we allow a worker loop without an outer gang loop?") and Section V-C
catalogues more.  This example demonstrates three of them on the simulated
stack:

1. **Fig. 1** — a worker loop without a gang loop: under the
   redundant-execution reading each gang runs the full worker loop, so the
   result scales with num_gangs — exactly the cross-compiler inconsistency
   the authors observed;
2. **Fig. 12** — the concrete device type behind acc_device_not_host is
   implementation-defined (different per vendor);
3. **default data attributes** — parallel treats unlisted scalars as
   firstprivate while kernels copies them, so the same region body behaves
   differently under the two constructs.

Run:  python examples/spec_ambiguities.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH already set)
except ModuleNotFoundError:  # source checkout: resolve src/ from this file
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import Compiler, CompilerBehavior
from repro.compiler.vendors import vendor_version


def fig1_worker_without_gang() -> None:
    print("=== Fig. 1: worker loop without an outer gang loop ===")
    template = """
int main(){{
  int i, a[8];
  for(i=0;i<8;i++) a[i] = 0;
  #pragma acc parallel num_gangs({gangs}) num_workers(2) copy(a[0:8])
  {{
    #pragma acc loop worker
    for(i=0;i<8;i++) a[i] = a[i] + 1;
  }}
  return a[0];
}}
"""
    cc = Compiler()
    for gangs in (1, 2, 4):
        value = cc.compile(template.format(gangs=gangs), "c").run().value
        print(f"  num_gangs({gangs}): each element incremented {value} time(s)")
    print("  -> the result depends on the gang count: with 1.0's silence on")
    print("     this nesting, different compilers legitimately disagreed.")
    print("     (2.0 made gang-outermost nesting explicit — Section V-C.)\n")


def fig12_device_type() -> None:
    print("=== Fig. 12: implementation-defined device types ===")
    src = """
int main(){
  int literal;
  acc_set_device_type(acc_device_not_host);
  literal = (acc_get_device_type() == acc_device_not_host);
  return literal;
}
"""
    for vendor, version in (("caps", "3.3.3"), ("pgi", "13.4"),
                            ("cray", "8.2.0")):
        behavior = vendor_version(vendor, version).behavior("c")
        compiler = Compiler(behavior)
        value = compiler.compile(src, "c").run().value
        concrete = behavior.concrete_device_type.name
        print(f"  {vendor:5s} {version:7s}: literal comparison "
              f"{'passes' if value else 'FAILS'} "
              f"(concrete type: {concrete})")
    print("  -> the 1.0 spec never named concrete types; the 2.0 appendix")
    print("     recommends names to make this portable.\n")


def default_attribute_divergence() -> None:
    print("=== default data attributes: parallel vs kernels ===")
    template = """
int main(){{
  int t = 1;
  #pragma acc {construct}
  {{
    t = 99;
  }}
  return t;
}}
"""
    cc = Compiler()
    for construct in ("parallel", "kernels"):
        value = cc.compile(template.format(construct=construct), "c").run().value
        print(f"  {construct:9s}: host t after the region = {value}")
    print("  -> 1.0 gives scalars firstprivate semantics under parallel but")
    print("     copy semantics under kernels; 2.0's default(none) lets the")
    print("     programmer forbid all implicit attributes (Section V-C).")


def main() -> None:
    fig1_worker_without_gang()
    fig12_device_type()
    default_attribute_divergence()


if __name__ == "__main__":
    main()
