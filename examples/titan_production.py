#!/usr/bin/env python3
"""Production use on the simulated Titan cluster (Section VII / Fig. 13).

Builds a 16-node cluster where a quarter of the nodes are degraded, then:

1. sweeps a random node sample, validating both software stacks
   (OpenACC->CUDA and OpenACC->OpenCL) on each — degraded nodes are
   flagged by the suite;
2. tracks aggregate functionality over six epochs across a bad compiler
   rollout and its subsequent fix.

Run:  python examples/titan_production.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH already set)
except ModuleNotFoundError:  # source checkout: resolve src/ from this file
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import CompilerBehavior
from repro.harness import HarnessConfig
from repro.harness.titan import (
    STACK_CUDA,
    STACK_OPENCL,
    TitanCluster,
    TitanHarness,
)
from repro.suite import openacc10_suite


def main() -> None:
    cluster = TitanCluster(num_nodes=16, degraded_fraction=0.25, seed=2012)
    harness = TitanHarness(
        cluster,
        openacc10_suite(),
        config=HarnessConfig(iterations=1, run_cross=False, languages=("c",)),
        feature_prefixes=["parallel", "update", "wait"],
    )

    degraded = sorted(n.node_id for n in cluster.nodes if not n.healthy)
    print(f"cluster: {len(cluster.nodes)} nodes; degraded (hidden from the "
          f"harness): {degraded}\n")

    print("=== random-node validation sweep (both software stacks) ===")
    checks = harness.sweep(sample_size=6, seed=1)
    for check in checks:
        flag = "FLAGGED" if check.flagged else "ok"
        print(f"  node {check.node_id:2d}  {check.stack:15s} "
              f"pass {check.pass_rate:6.1f}%  -> {flag}")
    caught = {c.node_id for c in checks if c.flagged}
    print(f"  flagged nodes: {sorted(caught)} "
          f"(all genuinely degraded: {caught <= set(degraded)})\n")

    print("=== functionality tracking across stack upgrades ===")
    bad_rollout = CompilerBehavior(name="titan-cc", version="cuda-new",
                                   async_wedged_by_compute_data_clauses=True)
    fix = CompilerBehavior(name="titan-cc", version="cuda-new-fixed")
    records = harness.timeline(
        epochs=6, sample_size=5,
        upgrades={2: (STACK_CUDA, bad_rollout), 4: (STACK_CUDA, fix)},
    )
    for record in records:
        epoch = int(record["epoch"])
        note = {2: "  <- bad CUDA-stack rollout", 4: "  <- fix deployed"}.get(epoch, "")
        print(f"  epoch {epoch}: cuda {record[STACK_CUDA]:6.1f}%  "
              f"opencl {record[STACK_OPENCL]:6.1f}%{note}")


if __name__ == "__main__":
    main()
