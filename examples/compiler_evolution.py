#!/usr/bin/env python3
"""Track a vendor's quality across releases (the Fig. 8 workflow).

Runs the full 1.0 suite against every simulated version of one vendor and
renders the pass-rate evolution as ASCII bars — the plots of Fig. 8(a)/(b)/
(c) in terminal form, with the per-version deltas the paper narrates
("the number of bugs somewhat decreased with every newer version of the
compiler released demonstrating improved compiler quality").

Run:  python examples/compiler_evolution.py [caps|pgi|cray]
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH already set)
except ModuleNotFoundError:  # source checkout: resolve src/ from this file
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import table1_counts, vendor_pass_rates


def main() -> None:
    vendor = sys.argv[1] if len(sys.argv) > 1 else "caps"
    print(f"running the full suite against every {vendor.upper()} version...\n")
    rates = vendor_pass_rates(vendor)
    counts = {row.version: row for row in table1_counts(vendor)}

    for language in ("c", "fortran"):
        print(f"{vendor.upper()} — {language} test suite")
        previous = None
        for point in rates[language]:
            row = counts[point.version]
            bugs = row.c_bugs if language == "c" else row.fortran_bugs
            bar = "#" * round(point.pass_rate / 2)
            delta = ""
            if previous is not None:
                change = point.pass_rate - previous
                if change > 0:
                    delta = f"  (+{change:.0f})"
                elif change < 0:
                    delta = f"  ({change:.0f})"
            print(f"  {point.version:7s} |{bar:<50s}| "
                  f"{point.pass_rate:5.1f}%  bugs={bugs:2d}{delta}")
            previous = point.pass_rate
        print()

    final = rates["c"][-1]
    if final.failures:
        print("features still failing in the final release (C):")
        for feature in final.report.failed_features("c"):
            print(f"  - {feature}")
    else:
        print("the final release passes the complete C suite.")


if __name__ == "__main__":
    main()
