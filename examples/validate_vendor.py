#!/usr/bin/env python3
"""Validate a simulated vendor compiler and emit the full report set.

Reproduces the paper's vendor-collaboration workflow (Section I: "We
identify and report bugs found in their OpenACC implementations"): run the
whole 1.0 suite against PGI 13.2 in both languages, then write the result
in all three formats the infrastructure supports (plain text, HTML, CSV)
plus the bug report with code snippets "for vendors' convenience".

Run:  python examples/validate_vendor.py [vendor] [version]
Reports land in ./reports/.
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH already set)
except ModuleNotFoundError:  # source checkout: resolve src/ from this file
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler.vendors import vendor_version
from repro.harness import (
    HarnessConfig,
    ValidationRunner,
    render_bug_report,
    render_csv,
    render_html,
    render_text,
)
from repro.suite import openacc10_suite


def main() -> None:
    vendor = sys.argv[1] if len(sys.argv) > 1 else "pgi"
    version = sys.argv[2] if len(sys.argv) > 2 else "13.2"
    vv = vendor_version(vendor, version)
    suite = openacc10_suite()
    out_dir = Path("reports")
    out_dir.mkdir(exist_ok=True)

    for language in ("c", "fortran"):
        config = HarnessConfig(iterations=3, languages=(language,))
        runner = ValidationRunner(vv.behavior(language), config)
        report = runner.run_suite(suite)

        print(f"{vv.label} [{language}]: "
              f"{report.pass_rate(language):.1f}% pass, "
              f"{len(report.failures(language))} failures, "
              f"{len(vv.bugs(language))} known bugs in the inventory")

        stem = f"{vendor}-{version}-{language}"
        (out_dir / f"{stem}.txt").write_text(render_text(report))
        (out_dir / f"{stem}.html").write_text(render_html(report))
        (out_dir / f"{stem}.csv").write_text(render_csv(report))
        (out_dir / f"{stem}-bugs.txt").write_text(render_bug_report(report))
        print(f"  wrote reports/{stem}.{{txt,html,csv}} and {stem}-bugs.txt")

    print("\nheadline findings for the vendor:")
    config = HarnessConfig(iterations=1, run_cross=False, languages=("c",))
    report = ValidationRunner(vv.behavior("c"), config).run_suite(suite)
    for result in report.failures()[:8]:
        kind = result.failure_kind.value if result.failure_kind else "?"
        print(f"  {result.feature:30s} [{kind}] "
              f"{result.functional.failure_detail()[:60]}")


if __name__ == "__main__":
    main()
