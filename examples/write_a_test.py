#!/usr/bin/env python3
"""Author a new validation test template from scratch.

Demonstrates the template workflow a suite contributor follows
(Section III / Fig. 3): write one HTML-syntax template with
``<acctv:check>`` markers, let the infrastructure generate the functional
and cross programs, run both against a conforming and a buggy
implementation, and read off the certainty statistic.

The example test validates `update host` on a subarray section.

Run:  python examples/write_a_test.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH already set)
except ModuleNotFoundError:  # source checkout: resolve src/ from this file
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import CompilerBehavior
from repro.harness import HarnessConfig, ValidationRunner
from repro.templates import generate_pair, parse_template

TEMPLATE = """
<acctv:test>
<acctv:testname>update_host_section.c</acctv:testname>
<acctv:testdescription>update host on a subarray section: only the named
half of the array may be refreshed from the device.</acctv:testdescription>
<acctv:directive>update.host</acctv:directive>
<acctv:language>c</acctv:language>
<acctv:version>1.0</acctv:version>
<acctv:dependences>data.copyin, parallel loop</acctv:dependences>
<acctv:defaults N="32"></acctv:defaults>
<acctv:testcode>
int main() {
  int i, ok = 1;
  int n = {{N}}, half = {{N}} / 2;
  int a[{{N}}];
  for(i=0; i<n; i++) a[i] = i;
  #pragma acc data copyin(a[0:n])
  {
    #pragma acc parallel loop
    for(i=0; i<n; i++)
      a[i] = a[i] + 100;
    <acctv:check>#pragma acc update host(a[0:half])</acctv:check>
    for(i=0; i<half; i++)
      if (a[i] != i + 100) ok = 0;   /* refreshed half */
    for(i=half; i<n; i++)
      if (a[i] != i) ok = 0;         /* untouched half */
  }
  return ok;
}
</acctv:testcode>
</acctv:test>
"""


def main() -> None:
    template = parse_template(TEMPLATE)
    print(f"template parsed: feature={template.feature} "
          f"({template.language}), deps={template.dependences}\n")

    functional, cross = generate_pair(template)
    print("=== generated functional test ===")
    print(functional.source)
    print("=== generated cross test (update removed) ===")
    print(cross.source)

    config = HarnessConfig(iterations=3)

    print("=== against the conforming reference implementation ===")
    result = ValidationRunner(config=config).run_template(template)
    print(f"functional: {'PASS' if result.passed else 'FAIL'}; "
          f"cross conclusive: {result.cross_conclusive}; "
          f"certainty pc = {result.certainty:.1%}\n")

    print("=== against a vendor whose update directive is a no-op ===")
    buggy = CompilerBehavior(name="buggy-cc", version="0.9", ignore_update=True)
    result = ValidationRunner(buggy, config).run_template(template)
    kind = result.failure_kind.value if result.failure_kind else "-"
    print(f"functional: {'PASS' if result.passed else 'FAIL'} [{kind}]")
    print("the silent wrong-code bug is exactly the class the paper calls "
          "'more vicious' (Section V).")


if __name__ == "__main__":
    main()
