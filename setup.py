"""Setuptools shim.

The execution environment has no `wheel` package and no network, so the
PEP 517 editable path (which needs bdist_wheel) is unavailable; this shim
lets `pip install -e . --no-use-pep517 --no-build-isolation` (legacy
`setup.py develop`) work offline.
"""

from setuptools import setup

setup()
