"""Tests for the execution engine, compile cache, config validation and
run metrics.

The central property (the determinism guarantee of
:mod:`repro.harness.engine`): ``serial``, ``thread`` and ``process``
policies must produce *identical* reports — same pass rates, failure kinds
and certainty values, byte-identical text/CSV renderings — for the same
configuration.
"""

import pytest

from repro.compiler import CompileCache, Compiler, CompilerBehavior
from repro.compiler.vendors import vendor_version
from repro.harness import (
    EXECUTION_POLICIES,
    EmptySelectionError,
    HarnessConfig,
    RunMetrics,
    ValidationRunner,
    create_engine,
    render_csv,
    render_metrics_csv,
    render_metrics_text,
    render_text,
)
from repro.suite import openacc10_suite
from repro.suite.builders import check, template_text
from repro.templates import parse_template


def _template(code: str, **kwargs):
    args = dict(name="t.c", feature="loop", language="c", code=code)
    args.update(kwargs)
    return parse_template(template_text(**args))


# ---------------------------------------------------------------------------
# HarnessConfig validation (the zero-iteration vacuous-pass bug)
# ---------------------------------------------------------------------------


class TestConfigValidation:
    @pytest.mark.parametrize("iterations", [0, -1, -100])
    def test_nonpositive_iterations_rejected(self, iterations):
        with pytest.raises(ValueError, match="iterations"):
            HarnessConfig(iterations=iterations)

    def test_zero_iterations_would_have_passed_vacuously(self):
        # the bug this guards against: M=0 makes every phase 'all correct'
        # and hands any compiler a pass with certainty 0
        config = HarnessConfig(iterations=1)
        assert config.iteration_seeds()  # never empty once validated

    @pytest.mark.parametrize("max_steps", [0, -5])
    def test_nonpositive_max_steps_rejected(self, max_steps):
        with pytest.raises(ValueError, match="max_steps"):
            HarnessConfig(max_steps=max_steps)

    @pytest.mark.parametrize("workers", [0, -2])
    def test_nonpositive_workers_rejected(self, workers):
        with pytest.raises(ValueError, match="workers"):
            HarnessConfig(workers=workers)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            HarnessConfig(policy="distributed")

    def test_defaults_are_valid(self):
        config = HarnessConfig()
        assert config.policy == "serial" and config.workers == 1

    def test_create_engine_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            create_engine("gpu", 2)


# ---------------------------------------------------------------------------
# policy equivalence (determinism guarantee)
# ---------------------------------------------------------------------------


#: a behaviour that exercises every verdict class: silent wrong values
#: (broken reductions), compile errors (declare unsupported) and passes
_BUGGY = CompilerBehavior(
    name="buggy", version="x",
    broken_reductions=frozenset({"+"}),
    unsupported_directives=frozenset({"declare"}),
)


def _run(policy: str, workers: int, **config_kwargs):
    defaults = dict(iterations=2, languages=("c",),
                    feature_prefixes=["loop", "declare", "parallel"])
    defaults.update(config_kwargs)
    config = HarnessConfig(policy=policy, workers=workers, **defaults)
    return ValidationRunner(_BUGGY, config).run_suite(openacc10_suite())


class TestPolicyEquivalence:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return _run("serial", 1)

    @pytest.mark.parametrize("policy,workers",
                             [("thread", 2), ("process", 2), ("process", 4)])
    def test_reports_byte_identical(self, serial_report, policy, workers):
        report = _run(policy, workers)
        assert render_csv(report) == render_csv(serial_report)
        assert render_text(report) == render_text(serial_report)

    @pytest.mark.parametrize("policy", ["thread", "process"])
    def test_semantics_identical(self, serial_report, policy):
        report = _run(policy, 2)
        assert report.pass_rate() == serial_report.pass_rate()
        assert report.by_failure_kind() == serial_report.by_failure_kind()
        assert [r.certainty for r in report.results] == \
               [r.certainty for r in serial_report.results]
        assert [r.template.name for r in report.results] == \
               [r.template.name for r in serial_report.results]

    def test_all_policies_registered(self):
        assert set(EXECUTION_POLICIES) == {"serial", "thread", "process"}

    def test_empty_selection_raises(self):
        # a selection matching nothing used to yield an empty report — a
        # vacuous 100%-equivalent pass; it must be refused loudly
        config = HarnessConfig(policy="process", workers=2,
                               features=["no.such.feature"])
        runner = ValidationRunner(_BUGGY, config)
        with pytest.raises(EmptySelectionError, match="no.such.feature"):
            runner.run_suite(openacc10_suite())


# ---------------------------------------------------------------------------
# compile cache
# ---------------------------------------------------------------------------


class TestCompileCache:
    def test_repeat_compiles_hit(self):
        cache = CompileCache()
        cc = Compiler()
        src = "int main(){ return 1; }"
        first = cache.get_or_compile(cc, src, "c", "t.c")
        second = cache.get_or_compile(cc, src, "c", "t.c")
        assert not first.hit and second.hit
        assert second.program is first.program
        assert cache.hits == 1 and cache.misses == 1

    def test_negative_caching_of_compile_errors(self):
        cache = CompileCache()
        cc = Compiler()
        src = "int main(){ this is not C }"
        first = cache.get_or_compile(cc, src, "c", "t.c")
        second = cache.get_or_compile(cc, src, "c", "t.c")
        assert first.error is not None and second.hit
        assert str(second.error) == str(first.error)

    def test_behaviors_never_alias(self):
        cache = CompileCache()
        src = "int main(){\n#pragma acc declare copyin(x)\nint x = 1; return x; }"
        ok = cache.get_or_compile(Compiler(), src, "c", "t.c")
        rejecting = Compiler(CompilerBehavior(
            name="nodeclare", version="0",
            unsupported_directives=frozenset({"declare"}),
        ))
        rejected = cache.get_or_compile(rejecting, src, "c", "t.c")
        assert ok.error is None
        assert rejected.error is not None and not rejected.hit

    def test_lru_eviction(self):
        cache = CompileCache(maxsize=2)
        cc = Compiler()
        for i in range(3):
            cache.get_or_compile(cc, f"int main(){{ return {i}; }}", "c", "t.c")
        assert len(cache) == 2
        # the oldest entry was evicted -> recompiling it is a miss
        refetch = cache.get_or_compile(cc, "int main(){ return 0; }", "c", "t.c")
        assert not refetch.hit

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            CompileCache(maxsize=0)

    def test_runner_reuses_cache_across_runs(self):
        tpl = _template(
            "int main(){ int x = 0; " + check("x = 1;") + " return x; }"
        )
        runner = ValidationRunner(config=HarnessConfig(iterations=2))
        first = runner.run_template(tpl)
        second = runner.run_template(tpl)
        assert not first.functional.cache_hit
        assert second.functional.cache_hit and second.cross.cache_hit
        # cached compiles must not change verdicts
        assert first.passed == second.passed
        assert first.certainty == second.certainty

    def test_cache_disabled_by_config(self):
        runner = ValidationRunner(
            config=HarnessConfig(iterations=1, compile_cache=False)
        )
        assert runner.cache is None
        tpl = _template("int main(){ return 1; }")
        result = runner.run_template(tpl)
        assert result.passed and not result.functional.cache_hit


# ---------------------------------------------------------------------------
# run metrics
# ---------------------------------------------------------------------------


class TestRunMetrics:
    @pytest.fixture(scope="class")
    def report(self):
        return _run("serial", 1)

    def test_metrics_attached_and_consistent(self, report):
        m = report.metrics
        assert isinstance(m, RunMetrics)
        assert m.policy == "serial" and m.workers == 1
        assert m.templates == len(report.results)
        assert m.wall_s > 0.0 and m.compile_s > 0.0 and m.execute_s > 0.0
        assert m.iterations_run == sum(
            len(r.functional.iterations)
            + (len(r.cross.iterations) if r.cross else 0)
            for r in report.results
        )
        assert m.failure_kinds == {
            kind.value: count for kind, count in report.by_failure_kind().items()
        }

    def test_utilization_bounds(self, report):
        assert 0.0 < report.metrics.worker_utilization <= 1.05

    def test_cache_counters_match_phase_flags(self, report):
        hits = sum(
            int(phase.cache_hit)
            for r in report.results
            for phase in (r.functional, r.cross)
            if phase is not None
        )
        assert report.metrics.cache_hits == hits

    def test_process_metrics_track_workers(self):
        report = _run("process", 2)
        assert report.metrics.policy == "process"
        assert report.metrics.workers == 2
        assert 1 <= len(report.metrics.worker_busy_s) <= 2
        assert all(w.startswith("pid-")
                   for w in report.metrics.worker_busy_s)

    def test_metrics_renderers(self, report):
        text = render_metrics_text(report)
        assert "run metrics" in text and "compile cache" in text
        assert "worker utilization" in text
        csv = render_metrics_csv(report)
        lines = csv.strip().split("\n")
        assert lines[0] == "metric,value"
        keys = {line.split(",", 1)[0] for line in lines[1:]}
        assert {"policy", "workers", "wall_s", "cache_hit_rate",
                "worker_utilization"} <= keys

    def test_metrics_renderers_without_metrics(self, report):
        from repro.harness import SuiteRunReport

        bare = SuiteRunReport(compiler_label="x", config=report.config)
        assert "no run metrics" in render_metrics_text(bare)
        assert render_metrics_csv(bare) == "metric,value\n"


# ---------------------------------------------------------------------------
# per-campaign cancellation (the CancelToken bugfix)
# ---------------------------------------------------------------------------


class TestCancelToken:
    def test_token_lifecycle(self):
        from repro.harness import CampaignInterrupted, CancelToken

        token = CancelToken()
        assert not token.cancelled()
        token.check()  # no-op while not cancelled
        token.cancel("test reason")
        assert token.cancelled()
        with pytest.raises(CampaignInterrupted, match="test reason"):
            token.check()
        token.reset()
        assert not token.cancelled()
        token.check()

    def test_request_drain_reaches_active_tokens_only(self):
        from repro.harness import (
            CancelToken,
            activate_token,
            request_drain,
            reset_drain,
        )

        active = CancelToken()
        bystander = CancelToken()
        with activate_token(active):
            request_drain()
        assert active.cancelled()
        assert not bystander.cancelled()
        # a token created after the drain starts fresh — the regression
        # this layer fixes: the old process-global flag poisoned every
        # later campaign in the process
        assert not CancelToken().cancelled()
        reset_drain()

    def test_activation_is_reentrant(self):
        # Titan re-registers its token around every inner run_suite
        from repro.harness import CancelToken, activate_token

        token = CancelToken()
        with activate_token(token):
            with activate_token(token):
                pass

    def test_second_campaign_after_drained_one_runs_clean(self):
        # satellite regression: campaign 1 drains; campaign 2, with no
        # explicit token, must run to completion on a fresh default
        from repro.harness import CampaignInterrupted, CancelToken

        config = HarnessConfig(iterations=1, languages=("c",),
                               feature_prefixes=["loop", "parallel"])
        runner = ValidationRunner(_BUGGY, config)
        doomed = CancelToken()
        doomed.cancel("drain campaign 1")
        with pytest.raises(CampaignInterrupted):
            runner.run_suite(openacc10_suite(), cancel=doomed)
        report = runner.run_suite(openacc10_suite())
        assert report.results and runner.cancel is None

    def test_stale_global_drain_does_not_poison_new_campaigns(self):
        # the literal pre-fix failure mode: request_drain() with no
        # campaign active used to set a process-global flag that made
        # every subsequent run_suite abort on its first unit
        from repro.harness import drain_requested, request_drain, reset_drain

        request_drain()
        assert drain_requested()
        try:
            config = HarnessConfig(iterations=1, languages=("c",),
                                   feature_prefixes=["loop.gang"])
            report = ValidationRunner(_BUGGY, config).run_suite(
                openacc10_suite()
            )
            assert report.results
        finally:
            reset_drain()
            assert not drain_requested()

    def test_retry_ladder_aborts_on_drain(self):
        # run_unit_resilient's never-raises contract has one documented
        # exception: a draining campaign must not sit out backoff sleeps
        from repro.faults import FaultPlan
        from repro.harness import (
            CampaignInterrupted,
            CancelToken,
            run_unit_resilient,
        )

        config = HarnessConfig(
            iterations=1, languages=("c",), retries=3, retry_backoff_s=60.0,
            feature_prefixes=["loop.gang"],
            fault_plan=FaultPlan.parse("iteration=1.0,persistent,seed=3"),
        )
        runner = ValidationRunner(_BUGGY, config)
        token = CancelToken()
        runner.cancel = token
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            token.cancel("drain mid-backoff")

        runner.sleeper = fake_sleep
        template = next(t for t in openacc10_suite()
                        if t.feature == "loop.gang" and t.language == "c")
        with pytest.raises(CampaignInterrupted):
            run_unit_resilient(runner, template)
        assert len(sleeps) == 1  # aborted after the first backoff


class TestConcurrentCampaigns:
    def _csv(self, config):
        return render_csv(
            ValidationRunner(_BUGGY, config).run_suite(openacc10_suite())
        )

    def test_two_concurrent_run_suites_byte_identical_to_serial(self):
        # two campaigns in one process, different configs, racing on
        # separate threads: each must render exactly like its own serial
        # equivalent (no shared mutable campaign state)
        import threading

        config_a = HarnessConfig(iterations=2, languages=("c",),
                                 feature_prefixes=["loop", "parallel"])
        config_b = HarnessConfig(iterations=1, languages=("c",),
                                 feature_prefixes=["declare", "update"],
                                 policy="thread", workers=2)
        expected = {"a": self._csv(config_a), "b": self._csv(config_b)}
        results: dict = {}

        def campaign(name, config):
            results[name] = self._csv(config)

        threads = [
            threading.Thread(target=campaign, args=("a", config_a)),
            threading.Thread(target=campaign, args=("b", config_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == expected

    def test_cancelling_one_concurrent_campaign_leaves_other_untouched(self):
        # the tentpole scenario, in-process: campaign A is cancelled
        # mid-flight, campaign B races it to completion and must render
        # byte-identical to its serial reference
        import threading

        from repro.harness import CampaignInterrupted, CancelToken

        config_a = HarnessConfig(iterations=5)  # big: both languages
        config_b = HarnessConfig(iterations=1, languages=("c",),
                                 feature_prefixes=["loop", "parallel"])
        expected_b = self._csv(config_b)
        token_a = CancelToken()
        started = threading.Event()
        outcome: dict = {}

        def campaign_a():
            runner = ValidationRunner(_BUGGY, config_a)
            live = runner.live

            class _Probe:
                def emit(self, record):
                    started.set()

                def close(self, final=None):
                    pass

            from repro.obs.live import LiveTelemetry

            runner.live = LiveTelemetry([_Probe()])
            try:
                runner.run_suite(openacc10_suite(), cancel=token_a)
                outcome["a"] = "finished"
            except CampaignInterrupted:
                outcome["a"] = "interrupted"
            finally:
                runner.live = live

        def campaign_b():
            outcome["b"] = self._csv(config_b)

        thread_a = threading.Thread(target=campaign_a)
        thread_b = threading.Thread(target=campaign_b)
        thread_a.start()
        assert started.wait(timeout=60)  # A is genuinely mid-flight
        thread_b.start()
        token_a.cancel("cancel A, not B")
        thread_a.join()
        thread_b.join()
        assert outcome["a"] == "interrupted"
        assert outcome["b"] == expected_b
