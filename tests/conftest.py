"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.compiler import Compiler, CompilerBehavior
from repro.harness import HarnessConfig, ValidationRunner
from repro.spec.versions import ACC_20
from repro.suite import openacc10_suite, openacc20_suite


@pytest.fixture(scope="session")
def reference_compiler() -> Compiler:
    return Compiler()


@pytest.fixture(scope="session")
def compiler20() -> Compiler:
    return Compiler(CompilerBehavior(name="reference", version="2.0",
                                     spec_version=ACC_20))


@pytest.fixture(scope="session")
def suite10():
    return openacc10_suite()


@pytest.fixture(scope="session")
def suite20():
    return openacc20_suite()


@pytest.fixture()
def quick_runner() -> ValidationRunner:
    return ValidationRunner(config=HarnessConfig(iterations=1))


def run_c(compiler: Compiler, source: str, env_vars=None):
    return compiler.compile(source, "c").run(env_vars=env_vars)


def run_f(compiler: Compiler, source: str, env_vars=None):
    return compiler.compile(source, "fortran").run(env_vars=env_vars)
