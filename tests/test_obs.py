"""Tests for the observability subsystem (repro.obs).

Covers the PR's acceptance criteria:

* tracer unit behaviour: nesting, deterministic IDs, drain/adopt, null path;
* with tracing enabled, serial and process-pool runs still render
  byte-identical reports, and the process trace contains spans from every
  worker re-parented under the suite-run root;
* ``repro trace summarize`` totals reconcile with ``RunMetrics``;
* HTML-escaping regressions for ``render_html`` and the trace dashboard;
* the CLI surface: ``--trace/--profile``, the metrics sidecar, the
  ``trace`` subcommand and argparse-level validation.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.compiler import CompilerBehavior
from repro.harness import (
    HarnessConfig,
    ValidationRunner,
    render_csv,
    render_html,
    render_text,
)
from repro.harness.runner import (
    FailureKind,
    IterationOutcome,
    PhaseResult,
    SuiteRunReport,
)
# aliased so pytest does not try to collect the Test* dataclasses
from repro.harness.runner import TestResult as _TestResult
from repro.templates import TestTemplate as _TestTemplate
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    parse_trace,
    read_trace,
    render_summary_text,
    render_trace_html,
    summarize_trace,
    trace_to_jsonl,
    write_trace,
)

_BUGGY = CompilerBehavior(
    name="buggy", version="x",
    broken_reductions=frozenset({"+"}),
    unsupported_directives=frozenset({"declare"}),
)


# ---------------------------------------------------------------------------
# tracer unit behaviour
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_sets_parent(self):
        tracer = Tracer()
        with tracer.span("outer", key="a") as outer:
            with tracer.span("inner", key="b") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.duration >= inner.duration >= 0.0

    def test_ids_are_deterministic_and_collision_suffixed(self):
        tracer = Tracer()
        with tracer.span("template", key="loop:c"):
            pass
        with tracer.span("template", key="loop:c"):
            pass
        with tracer.span("template", key="loop:c"):
            pass
        ids = [s.span_id for s in tracer.spans]
        assert ids == ["template[loop:c]", "template[loop:c]~2",
                       "template[loop:c]~3"]

    def test_events_are_sequenced_and_span_attributed(self):
        tracer = Tracer()
        with tracer.span("run", key="r") as root:
            tracer.event("first", value=1)
            tracer.event("second", value=2)
        tracer.event("outside")
        seqs = [e.seq for e in tracer.events]
        assert seqs == [0, 1, 2]
        assert tracer.events[0].span_id == root.span_id
        assert tracer.events[2].span_id is None

    def test_drain_and_adopt_round_trip(self):
        worker = Tracer()
        with worker.span("template", key="t:c") as span:
            worker.event("iteration.failed", kind="wrong_value")
            span.set(passed=False)
        worker.metrics.counter("templates.run").inc()
        payload = worker.drain()
        # drain resets the worker completely
        assert worker.spans == [] and worker.events == []
        assert worker.metrics.snapshot()["counters"] == {}

        parent = Tracer()
        parent.event("already.here")
        parent.adopt(payload, worker="pid-42")
        assert [s.worker for s in parent.spans] == ["pid-42"]
        assert [s.span_id for s in parent.spans] == ["template[t:c]"]
        assert parent.spans[0].attrs["passed"] is False
        # adopted event renumbered after the parent's own
        assert [(e.seq, e.name) for e in parent.events] == [
            (0, "already.here"), (1, "iteration.failed")]
        assert parent.metrics.snapshot()["counters"] == {"templates.run": 1}

    def test_reparent_orphans(self):
        tracer = Tracer()
        with tracer.span("run", key="r") as root:
            pass
        orphan = {"spans": [{"id": "template[x:c]", "name": "template",
                             "key": "x:c", "parent": None, "worker": "w",
                             "t0": 0.0, "dur_s": 0.5, "attrs": {}}],
                  "events": [], "metrics": {}}
        tracer.adopt(orphan, worker="pid-7")
        tracer.reparent_orphans(root)
        adopted = [s for s in tracer.spans if s.name == "template"][0]
        assert adopted.parent_id == root.span_id
        assert root.parent_id is None  # the root itself is left alone

    def test_null_tracer_records_nothing_but_still_times(self):
        import time

        with NULL_TRACER.span("anything", key="k") as span:
            span.set(ignored=True)
            NULL_TRACER.event("ignored")
            NULL_TRACER.metrics.counter("ignored").inc()
            NULL_TRACER.metrics.histogram("ignored").observe(3)
            time.sleep(0.001)
        assert span.duration > 0.0  # the runner's timers still work
        assert NULL_TRACER.spans == [] and NULL_TRACER.events == []
        assert not NULL_TRACER.enabled


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(1.5)
        for value in (2.0, 8.0, 5.0):
            registry.histogram("h").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 5}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"] == {"h": (3, 15.0, 2.0, 8.0)}

    def test_merge_folds_all_kinds(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h").observe(1.0)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(7.0)
        b.histogram("h").observe(9.0)
        a.merge(b.snapshot())
        snapshot = a.snapshot()
        assert snapshot["counters"] == {"c": 5}
        assert snapshot["gauges"] == {"g": 7.0}
        assert snapshot["histograms"] == {"h": (2, 10.0, 1.0, 9.0)}


class TestSink:
    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("run", key="r", policy="serial") as root:
            with tracer.span("template", key="t:c"):
                tracer.event("iteration.failed", kind="timeout", seed=3)
        tracer.metrics.counter("templates.run").inc()
        tracer.metrics.gauge("run.wall_s").set(0.25)
        tracer.metrics.histogram("iteration.steps").observe(11)
        text = trace_to_jsonl(tracer, meta={"command": "test"})
        trace = parse_trace(text)
        assert trace.meta["command"] == "test"
        assert {s.span_id for s in trace.spans} == \
            {root.span_id, "template[t:c]"}
        restored = trace.span_by_id("template[t:c]")
        assert restored.parent_id == root.span_id
        original = [s for s in tracer.spans if s.name == "template"][0]
        assert restored.duration == original.duration  # floats exact via json
        assert [(e.name, e.fields) for e in trace.events] == \
            [("iteration.failed", {"kind": "timeout", "seed": 3})]
        assert trace.counters == {"templates.run": 1}
        assert trace.gauges == {"run.wall_s": 0.25}
        assert trace.histograms == {"iteration.steps": (1, 11, 11, 11)}

    def test_parse_rejects_bad_input(self):
        with pytest.raises(ValueError, match="unsupported format"):
            parse_trace('{"type": "meta", "format": "other/v9"}\n')
        with pytest.raises(ValueError, match="line 1"):
            parse_trace("not json\n")
        with pytest.raises(ValueError, match="unknown record type"):
            parse_trace('{"type": "mystery"}\n')


class TestTornTraces:
    """A SIGKILLed run leaves a trace with a truncated last line; the
    tolerant reader must count and skip the damage, not crash."""

    def _trace_text(self) -> str:
        tracer = Tracer()
        with tracer.span("run", key="r"):
            with tracer.span("template", key="t:c"):
                pass
        tracer.event("done", ok=True)
        tracer.metrics.counter("templates.run").inc()
        return trace_to_jsonl(tracer, meta={"command": "validate"})

    def test_tolerant_parse_counts_torn_tail(self):
        text = self._trace_text()
        torn = text[:-25]  # cut mid-way through the last record
        trace = parse_trace(torn, strict=False)
        assert trace.malformed == 1
        assert len(trace.spans) == 2  # intact records all survive
        with pytest.raises(ValueError):
            parse_trace(torn)  # strict mode still refuses

    def test_tolerant_parse_skips_mid_file_garbage(self):
        lines = self._trace_text().splitlines()
        lines.insert(2, "garbage not json")
        lines.insert(3, '{"type": "mystery"}')
        trace = parse_trace("\n".join(lines) + "\n", strict=False)
        assert trace.malformed == 2
        assert len(trace.spans) == 2

    def test_tolerant_parse_still_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="unsupported format"):
            parse_trace('{"type": "meta", "format": "other/v9"}\n',
                        strict=False)

    def test_cli_summarize_warns_on_torn_trace(self, tmp_path, capsys):
        torn = self._trace_text()[:-25]
        path = tmp_path / "torn.jsonl"
        path.write_text(torn)
        assert main(["trace", "summarize", str(path)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 malformed trace line" in captured.err
        assert "trace summary" in captured.out

    def test_cli_html_renders_torn_trace(self, tmp_path, capsys):
        torn = self._trace_text()[:-25]
        path = tmp_path / "torn.jsonl"
        path.write_text(torn)
        out = tmp_path / "torn.html"
        assert main(["trace", "html", str(path),
                     "--output", str(out)]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")
        assert "skipped 1 malformed trace line" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# traced suite runs: determinism, worker marshalling, reconciliation
# ---------------------------------------------------------------------------


def _traced_run(suite, policy: str, workers: int):
    config = HarnessConfig(
        iterations=2, languages=("c",), policy=policy, workers=workers,
        feature_prefixes=["loop", "declare", "parallel"],
    )
    tracer = Tracer(profile=True)
    runner = ValidationRunner(_BUGGY, config, tracer=tracer)
    report = runner.run_suite(suite)
    return report, tracer


@pytest.fixture(scope="module")
def traced_runs(suite10):
    serial = _traced_run(suite10, "serial", 1)
    process = _traced_run(suite10, "process", 4)
    return {"serial": serial, "process": process}


class TestTracedSuiteRun:
    def test_reports_stay_byte_identical_with_tracing(self, traced_runs):
        serial_report, _ = traced_runs["serial"]
        process_report, _ = traced_runs["process"]
        assert render_text(process_report) == render_text(serial_report)
        assert render_csv(process_report) == render_csv(serial_report)
        assert render_html(process_report) == render_html(serial_report)

    def test_span_ids_identical_across_policies(self, traced_runs):
        _, serial_tracer = traced_runs["serial"]
        _, process_tracer = traced_runs["process"]
        serial_ids = sorted(s.span_id for s in serial_tracer.spans)
        process_ids = sorted(s.span_id for s in process_tracer.spans)
        assert serial_ids == process_ids

    def test_worker_spans_reparented_under_suite_root(self, traced_runs):
        process_report, tracer = traced_runs["process"]
        roots = [s for s in tracer.spans if s.parent_id is None]
        assert len(roots) == 1 and roots[0].name == "run"
        templates = [s for s in tracer.spans if s.name == "template"]
        assert templates
        assert all(s.parent_id == roots[0].span_id for s in templates)
        # spans from *every* worker of the pool made it back
        span_workers = {s.worker for s in templates}
        assert span_workers == set(process_report.metrics.worker_busy_s)
        assert all(w.startswith("pid-") for w in span_workers)

    def test_template_span_count_matches_report(self, traced_runs):
        report, tracer = traced_runs["process"]
        templates = [s for s in tracer.spans if s.name == "template"]
        assert len(templates) == len(report.results)

    def test_summarize_reconciles_with_run_metrics(self, traced_runs, tmp_path):
        report, tracer = traced_runs["serial"]
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, tracer, meta={"command": "test"})
        summary = summarize_trace(read_trace(path))
        metrics = report.metrics
        assert summary.compile_s == pytest.approx(metrics.compile_s)
        assert summary.execute_s == pytest.approx(metrics.execute_s)
        assert summary.cache_hits == metrics.cache_hits
        assert summary.cache_misses == metrics.cache_misses
        assert summary.wall_s == pytest.approx(
            metrics.wall_s, rel=0.2, abs=0.2)
        text = render_summary_text(summary)
        assert "trace summary" in text and "slowest templates" in text

    def test_failure_events_and_counters(self, traced_runs):
        report, tracer = traced_runs["serial"]
        snapshot = tracer.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["templates.run"] == len(report.results)
        assert counters["iterations.run"] == report.metrics.iterations_run
        failed = [e for e in tracer.events if e.name == "iteration.failed"]
        assert failed, "buggy behaviour must produce failure events"
        kinds = {e.fields["kind"] for e in failed}
        assert "wrong_value" in kinds
        # compile errors surface as cached-compile counters, not iterations
        assert counters["compile.errors"] >= 1

    def test_profile_histograms_present(self, traced_runs):
        _, tracer = traced_runs["serial"]
        histograms = tracer.metrics.snapshot()["histograms"]
        count, total, _, _ = histograms["profile.bytes_to_device"]
        assert count > 0 and total > 0  # data clauses moved real bytes
        steps_count, steps_total, _, _ = histograms["iteration.steps"]
        assert steps_count > 0 and steps_total > 0


class TestTitanTracing:
    def test_sweep_produces_spans_and_flag_events(self):
        from repro.harness.titan import TitanCluster, TitanHarness
        from repro.suite import openacc10_suite

        tracer = Tracer()
        cluster = TitanCluster(num_nodes=4, degraded_fraction=0.5, seed=1)
        harness = TitanHarness(
            cluster, openacc10_suite(),
            config=HarnessConfig(iterations=1, run_cross=False,
                                 languages=("c",)),
            feature_prefixes=["update"],
            tracer=tracer,
        )
        checks = harness.sweep(sample_size=2, seed=0)
        sweeps = [s for s in tracer.spans if s.name == "titan.sweep"]
        assert len(sweeps) == 1
        node_checks = [s for s in tracer.spans if s.name == "titan.check"]
        assert len(node_checks) == len(checks)
        assert all(s.parent_id == sweeps[0].span_id for s in node_checks)
        # each check's suite-run root hangs under its titan.check span
        run_roots = [s for s in tracer.spans if s.name == "run"]
        assert {s.parent_id for s in run_roots} == \
            {s.span_id for s in node_checks}
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["titan.checks"] == len(checks)
        flagged = [c for c in checks if c.flagged]
        events = [e for e in tracer.events if e.name == "titan.node_flagged"]
        assert len(events) == len(flagged)
        if flagged:
            assert counters["titan.flagged"] == len(flagged)
            assert {e.fields["node"] for e in events} == \
                {c.node_id for c in flagged}


# ---------------------------------------------------------------------------
# HTML escaping regressions
# ---------------------------------------------------------------------------


_POISON_FEATURE = "<script>alert('f')</script>&feature"
_POISON_DETAIL = "<script>alert('d')</script> & <b>detail</b>"


def _poisoned_report() -> SuiteRunReport:
    template = _TestTemplate(name="evil", feature=_POISON_FEATURE,
                             language="c", code="")
    functional = PhaseResult(
        mode="functional", source="int main(){}",
        iterations=[IterationOutcome(ok=False, error=_POISON_DETAIL,
                                     kind=FailureKind.WRONG_VALUE)],
    )
    return SuiteRunReport(
        compiler_label="evil <vendor> & co",
        config=HarnessConfig(iterations=1),
        results=[_TestResult(template=template, functional=functional)],
    )


class TestHtmlEscaping:
    def test_render_html_escapes_feature_and_detail(self):
        page = render_html(_poisoned_report())
        assert "<script" not in page
        assert "&lt;script&gt;alert(&#x27;f&#x27;)&lt;/script&gt;" in page
        assert "&amp;feature" in page
        assert "&lt;b&gt;detail&lt;/b&gt;" in page
        assert "evil &lt;vendor&gt; &amp; co" in page

    def test_render_html_escapes_language_field(self):
        """Regression: ``r.language`` was interpolated raw — a template
        with a poisoned language broke out of its table cell."""
        template = _TestTemplate(name="evil", feature="parallel.if",
                                 language="<script>alert('l')</script>",
                                 code="")
        functional = PhaseResult(
            mode="functional", source="int main(){}",
            iterations=[IterationOutcome(ok=True)],
        )
        report = SuiteRunReport(
            compiler_label="demo", config=HarnessConfig(iterations=1),
            results=[_TestResult(template=template, functional=functional)],
        )
        page = render_html(report)
        assert "<script" not in page
        assert "&lt;script&gt;alert(&#x27;l&#x27;)&lt;/script&gt;" in page

    def test_dashboard_escapes_keys_events_metrics_and_meta(self):
        tracer = Tracer()
        with tracer.span("run", key="<vendor>&run") as root:
            with tracer.span("template",
                             key=f"{_POISON_FEATURE}:c") as span:
                span.set(passed=False)
                tracer.event("iteration.failed",
                             template=_POISON_FEATURE, kind="<&>")
        tracer.reparent_orphans(root)
        tracer.metrics.counter("evil<metric>&count").inc()
        trace = parse_trace(trace_to_jsonl(
            tracer, meta={"command": "<script>cmd</script>"}))
        page = render_trace_html(trace)
        assert "<script" not in page
        assert "&lt;script&gt;" in page
        assert "evil&lt;metric&gt;&amp;count" in page
        assert "&lt;script&gt;cmd&lt;/script&gt;" in page


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


_QUICK = ["--language", "c", "--features", "wait", "--iterations", "1",
          "--no-cross"]


class TestCliTrace:
    def test_validate_writes_trace_and_summarize_reads_it(
            self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        assert main(["validate", *_QUICK,
                     "--trace", trace_path, "--profile"]) == 0
        assert f"wrote {trace_path}" in capsys.readouterr().out
        trace = read_trace(trace_path)
        assert trace.meta["command"] == "validate"
        assert trace.meta["profile"] is True
        assert trace.spans_named("run")

        assert main(["trace", "summarize", trace_path]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out and "per-phase time breakdown" in out

    def test_trace_html_writes_dashboard(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        main(["validate", *_QUICK, "--trace", trace_path])
        capsys.readouterr()
        out_path = str(tmp_path / "dash.html")
        assert main(["trace", "html", trace_path,
                     "--output", out_path]) == 0
        capsys.readouterr()
        with open(out_path) as handle:
            page = handle.read()
        assert page.startswith("<!DOCTYPE html>")
        assert "repro trace dashboard" in page

    def test_trace_summarize_missing_file_fails_cleanly(self, capsys):
        assert main(["trace", "summarize", "/nonexistent/trace.jsonl"]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_titan_trace_records_sweep(self, tmp_path, capsys):
        trace_path = str(tmp_path / "titan.jsonl")
        assert main(["titan", "--nodes", "4", "--sample", "1",
                     "--degraded", "0.5", "--trace", trace_path]) == 0
        capsys.readouterr()
        trace = read_trace(trace_path)
        assert trace.meta["command"] == "titan"
        assert trace.spans_named("titan.sweep")
        assert trace.spans_named("titan.check")


class TestCliMetricsSidecar:
    def test_metrics_written_next_to_output(self, tmp_path, capsys):
        report_path = str(tmp_path / "report.txt")
        main(["validate", *_QUICK, "--metrics", "--output", report_path])
        out = capsys.readouterr().out
        sidecar = report_path + ".metrics.txt"
        assert f"wrote {sidecar}" in out
        assert "run metrics" not in out  # no timing noise on stdout
        with open(sidecar) as handle:
            assert "run metrics" in handle.read()

    def test_metrics_sidecar_matches_csv_format(self, tmp_path, capsys):
        report_path = str(tmp_path / "report.csv")
        main(["validate", *_QUICK, "--format", "csv",
              "--metrics", "--output", report_path])
        capsys.readouterr()
        with open(report_path + ".metrics.csv") as handle:
            assert handle.read().startswith("metric,value")

    def test_metrics_still_print_without_output(self, capsys):
        main(["validate", *_QUICK, "--metrics"])
        assert "run metrics" in capsys.readouterr().out


class TestCliValidation:
    @pytest.mark.parametrize("argv,message", [
        (["titan", "--degraded", "1.5"], "must be in [0, 1]"),
        (["titan", "--degraded", "-0.1"], "must be in [0, 1]"),
        (["titan", "--nodes", "0"], "must be >= 1"),
        (["titan", "--sample", "-3"], "must be >= 1"),
        (["validate", "--iterations", "0"], "must be >= 1"),
        (["validate", "--workers", "nope"], "not an integer"),
    ])
    def test_argparse_rejects_out_of_range(self, argv, message, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert message in capsys.readouterr().err
