"""Tests for the forward-looking OpenACC 2.0 support (Section V-C)."""

import pytest

from repro.accsim.errors import AccRuntimeError
from repro.compiler import CompileError
from repro.templates import generate_cross, generate_functional


class TestSuite20:
    def test_scope(self, suite20):
        features = set(suite20.features())
        assert {"enter data", "exit data", "routine",
                "parallel.default_none"} <= features

    def test_functionals_pass_on_20_compiler(self, suite20, compiler20):
        for template in suite20:
            generated = generate_functional(template)
            result = compiler20.compile(
                generated.source, template.language, template.name
            ).run()
            assert result.value == 1, template.name

    def test_rejected_by_10_compiler(self, suite20, reference_compiler):
        for template in suite20:
            generated = generate_functional(template)
            with pytest.raises(CompileError):
                reference_compiler.compile(
                    generated.source, template.language, template.name
                )

    def test_crosses_fail_on_20_compiler(self, suite20, compiler20):
        for template in suite20:
            if not template.has_cross:
                continue
            generated = generate_cross(template)
            try:
                result = compiler20.compile(
                    generated.source, template.language, template.name
                ).run()
                outcome = "pass" if result.value == 1 else "wrong"
            except (CompileError, AccRuntimeError):
                outcome = "wrong"
            assert outcome == "wrong", template.name


class TestUnstructuredData:
    def test_enter_exit_lifetime(self, compiler20):
        src = """
int main(){
  int i, a[6];
  for(i=0;i<6;i++) a[i] = i;
  #pragma acc enter data copyin(a[0:6])
  #pragma acc parallel loop present(a[0:6])
  for(i=0;i<6;i++) a[i] *= 2;
  #pragma acc exit data copyout(a[0:6])
  return a[5] == 10;
}
"""
        assert compiler20.compile(src, "c").run().value == 1

    def test_exit_data_delete_discards(self, compiler20):
        src = """
int main(){
  int i, a[6];
  for(i=0;i<6;i++) a[i] = 1;
  #pragma acc enter data copyin(a[0:6])
  #pragma acc parallel loop present(a[0:6])
  for(i=0;i<6;i++) a[i] = 9;
  #pragma acc exit data delete(a[0:6])
  return a[0] == 1;
}
"""
        assert compiler20.compile(src, "c").run().value == 1

    def test_enter_data_if_false(self, compiler20):
        src = """
int main(){
  int i, a[6];
  #pragma acc enter data if (0) copyin(a[0:6])
  #pragma acc parallel loop present(a[0:6])
  for(i=0;i<6;i++) a[i] = 0;
  return 1;
}
"""
        from repro.accsim.errors import PresentError

        with pytest.raises(PresentError):
            compiler20.compile(src, "c").run()
