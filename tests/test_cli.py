"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListCommands:
    def test_list_features(self, capsys):
        assert main(["list-features"]) == 0
        out = capsys.readouterr().out
        assert "parallel.num_gangs" in out
        assert "runtime.acc_malloc" in out

    def test_list_vendors(self, capsys):
        assert main(["list-vendors"]) == 0
        out = capsys.readouterr().out
        assert "caps" in out and "pgi" in out and "cray" in out
        assert "C bugs:  36" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert out.count("matches paper: True") == 3


class TestGenerate:
    def test_generate_both_modes(self, capsys):
        assert main(["generate", "loop", "--language", "c"]) == 0
        out = capsys.readouterr().out
        assert "functional test" in out and "cross test" in out
        assert "#pragma acc parallel" in out

    def test_generate_fortran(self, capsys):
        assert main(["generate", "loop", "--language", "fortran",
                     "--mode", "functional"]) == 0
        out = capsys.readouterr().out
        assert "!$acc parallel" in out

    def test_generate_unknown_feature(self, capsys):
        assert main(["generate", "no.such.feature"]) == 1


class TestValidate:
    def test_validate_reference_slice(self, capsys):
        code = main(["validate", "--features", "wait", "--language", "c",
                     "--iterations", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "100.00% pass" in out

    def test_validate_vendor_exit_code(self, capsys):
        code = main(["validate", "--vendor", "cray", "--version", "8.1.2",
                     "--language", "c", "--iterations", "1", "--no-cross",
                     "--features", "cache"])
        assert code == 2  # failures present
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_validate_csv_format(self, capsys):
        main(["validate", "--features", "wait", "--language", "c",
              "--iterations", "1", "--format", "csv"])
        out = capsys.readouterr().out
        assert out.startswith("feature,language,result")

    def test_validate_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.html"
        main(["validate", "--features", "wait", "--language", "c",
              "--iterations", "1", "--format", "html",
              "--output", str(target)])
        assert target.exists()
        assert target.read_text().startswith("<!DOCTYPE html>")

    def test_vendor_requires_version(self, capsys):
        with pytest.raises(SystemExit):
            main(["validate", "--vendor", "pgi"])

    def test_validate_parallel_engine_with_metrics(self, capsys):
        code = main(["validate", "--features", "wait", "--language", "c",
                     "--iterations", "1", "--policy", "process",
                     "--workers", "2", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "100.00% pass" in out
        assert "run metrics" in out
        assert "policy             : process (workers=2)" in out

    def test_validate_metrics_csv(self, capsys):
        main(["validate", "--features", "wait", "--language", "c",
              "--iterations", "1", "--format", "csv", "--metrics",
              "--no-compile-cache"])
        out = capsys.readouterr().out
        assert "metric,value" in out
        assert "cache_hits,0" in out

    def test_validate_rejects_bad_workers(self, capsys):
        # rejected at argparse level, before any suite work starts
        with pytest.raises(SystemExit):
            main(["validate", "--features", "wait", "--language", "c",
                  "--iterations", "1", "--workers", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_empty_selection_exits_nonzero(self, capsys):
        # used to print an empty 0.00% report and exit 0 — a vacuous pass
        code = main(["validate", "--features", "no.such.prefix",
                     "--language", "c", "--iterations", "1"])
        assert code == 1
        captured = capsys.readouterr()
        assert "matched no templates" in captured.err
        assert "no.such.prefix" in captured.err

    def test_inject_faults_with_retries_heals(self, capsys):
        code = main(["validate", "--features", "wait", "--language", "c",
                     "--iterations", "1", "--no-cross", "--retries", "2",
                     "--inject-faults", "iteration=1.0,seed=7"])
        assert code == 0
        assert "100.00% pass" in capsys.readouterr().out

    def test_inject_faults_persistent_exits_two(self, capsys):
        code = main(["validate", "--features", "wait", "--language", "c",
                     "--iterations", "1", "--no-cross", "--retries", "1",
                     "--inject-faults", "iteration=1.0,seed=7,persistent"])
        assert code == 2
        assert "harness_error" in capsys.readouterr().out

    def test_inject_faults_rejects_bad_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["validate", "--features", "wait", "--language", "c",
                  "--inject-faults", "warp=0.5"])
        assert "warp" in capsys.readouterr().err

    def test_rejects_bad_timeout(self, capsys):
        with pytest.raises(SystemExit):
            main(["validate", "--features", "wait", "--language", "c",
                  "--timeout-s", "0"])
        assert "must be > 0" in capsys.readouterr().err


class TestTitanCommand:
    def test_titan_sweep(self, capsys):
        assert main(["titan", "--nodes", "6", "--sample", "2",
                     "--degraded", "0.34"]) == 0
        out = capsys.readouterr().out
        assert "node" in out and "checks flagged" in out

    def test_titan_quarantine_summary(self, capsys):
        assert main(["titan", "--nodes", "4", "--sample", "4",
                     "--degraded", "0.5", "--recheck", "1"]) == 0
        out = capsys.readouterr().out
        assert "quarantined after 1 recheck(s)" in out
