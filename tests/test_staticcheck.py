"""Tests for the static checker: diagnostics model, the three analysis
passes, the corpus lint entry points, and the harness/CLI wiring."""

import json

import pytest

from repro.harness import HarnessConfig, ValidationRunner
from repro.harness.report import render_text
from repro.harness.runner import FailureKind
from repro.ir.acc import Clause, DataRef, Directive
from repro.staticcheck import (
    ALLOWED_CLAUSES,
    CODE_CATALOG,
    Diagnostic,
    Severity,
    check_directive,
    check_program_dependence,
    check_program_legality,
    legal_clauses,
    lint_source,
    lint_suite,
    lint_template,
    render_lint_json,
    sort_diagnostics,
    summarize,
)
from repro.spec.versions import ACC_10, ACC_20
from repro.suite.registry import SuiteRegistry, openacc10_suite
from repro.templates import TestTemplate as Template


def codes(diags):
    return [d.code for d in diags]


def lint_c(source):
    return lint_source(source, language="c", name="test.c")


def lint_f(source):
    return lint_source(source, language="fortran", name="test.f90")


def template(code, *, feature="parallel", language="c", name="t.c", **kw):
    return Template(name=name, feature=feature, language=language,
                    code=code, **kw)


# ---------------------------------------------------------------------------
# diagnostics model
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_undeclared_code_rejected(self):
        with pytest.raises(ValueError, match="undeclared diagnostic code"):
            Diagnostic("ACC999", "nope")

    def test_every_code_has_a_catalog_entry(self):
        for code in CODE_CATALOG:
            assert code.startswith("ACC")
            assert CODE_CATALOG[code]

    def test_render_includes_location_and_hint(self):
        from repro.ir.astnodes import SourceLocation

        d = Diagnostic("ACC101", "clause 'x' not permitted on 'y'",
                       loc=SourceLocation("f.c", 3, 7), hint="remove it")
        assert d.render() == (
            "3:7: error: ACC101 clause 'x' not permitted on 'y' "
            "(hint: remove it)"
        )

    def test_sort_is_deterministic(self):
        from repro.ir.astnodes import SourceLocation

        a = Diagnostic("ACC102", "b", loc=SourceLocation("f", 2, 1))
        b = Diagnostic("ACC101", "a", loc=SourceLocation("f", 1, 9))
        c = Diagnostic("ACC101", "c", loc=SourceLocation("f", 2, 1))
        assert codes(sort_diagnostics([a, b, c])) == [
            "ACC101", "ACC101", "ACC102"
        ]

    def test_summarize_limits(self):
        diags = [Diagnostic("ACC101", f"m{i}") for i in range(5)]
        text = summarize(diags, limit=2)
        assert "(+3 more)" in text


# ---------------------------------------------------------------------------
# pass 1: legality (ACC1xx)
# ---------------------------------------------------------------------------


class TestLegalityMatrix:
    def test_clean_program_has_no_diagnostics(self):
        src = """
        int main() {
          int i, n = 4; int a[4];
          #pragma acc parallel loop copy(a[0:n])
          for(i=0; i<n; i++) a[i] = i;
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc101_clause_not_permitted(self):
        src = """
        int main() {
          int x = 0;
          #pragma acc data private(x)
          { x = 1; }
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC101"]
        assert "'private' not permitted on 'data'" in diags[0].message

    def test_acc101_v20_directive_at_10(self):
        d = Directive(kind="enter data",
                      clauses=[Clause("copyin")])
        diags = check_directive(d, ACC_10)
        assert codes(diags) == ["ACC101"]
        assert "2.0" in diags[0].hint
        assert check_directive(d, ACC_20) == []

    def test_acc102_duplicate_single_valued(self):
        d = Directive(kind="parallel", clauses=[
            Clause("num_gangs"), Clause("num_gangs"),
        ])
        assert codes(check_directive(d)) == ["ACC102"]

    def test_acc103_variable_in_two_data_clauses(self):
        src = """
        int main() {
          int n = 4; int a[4];
          #pragma acc data copy(a[0:n]) copyin(a[0:n])
          { }
          return 1;
        }
        """
        diags = lint_c(src)
        # the dataenv pass also sees the copyin as dead (ACC406)
        assert codes(diags) == ["ACC103", "ACC406"]
        assert "'a'" in diags[0].message

    def test_acc104_seq_conflicts_with_parallelism(self):
        src = """
        int main() {
          int i, n = 4; int a[4];
          #pragma acc parallel copy(a[0:n])
          {
            #pragma acc loop seq independent
            for(i=0; i<n; i++) a[i] = i;
          }
          return 1;
        }
        """
        assert codes(lint_c(src)) == ["ACC104"]

    def test_acc105_gang_inside_vector(self):
        src = """
        int main() {
          int i, j, n = 4; int a[4];
          #pragma acc parallel copy(a[0:n])
          {
            #pragma acc loop vector
            for(i=0; i<n; i++) {
              #pragma acc loop gang
              for(j=0; j<n; j++) a[j] = j;
            }
          }
          return 1;
        }
        """
        assert codes(lint_c(src)) == ["ACC105"]

    def test_acc105_correct_order_is_clean(self):
        src = """
        int main() {
          int i, j, n = 4; int a[4];
          #pragma acc parallel copy(a[0:n])
          {
            #pragma acc loop gang
            for(i=0; i<n; i++) {
              #pragma acc loop vector
              for(j=0; j<n; j++) a[j] = j;
            }
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc106_nested_compute(self):
        src = """
        int main() {
          int x = 0;
          #pragma acc parallel
          {
            #pragma acc kernels
            { x = 1; }
          }
          return 1;
        }
        """
        assert "ACC106" in codes(lint_c(src))

    def test_acc107_cache_outside_loop(self):
        src = """
        int main() {
          int n = 4; int a[4];
          #pragma acc cache(a[0:n])
          return 1;
        }
        """
        assert codes(lint_c(src)) == ["ACC107"]

    def test_acc107_cache_inside_combined_loop_is_clean(self):
        # `parallel loop` is a compute region AND a loop: cache in its
        # body must not be flagged
        src = """
        int main() {
          int i, n = 4; int a[4], b[4];
          #pragma acc parallel loop copy(a[0:n], b[0:n])
          for(i=0; i<n; i++) {
            #pragma acc cache(a[0:n])
            b[i] = a[i];
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc108_update_inside_compute(self):
        src = """
        int main() {
          int n = 4; int a[4];
          #pragma acc parallel copy(a[0:n])
          {
            #pragma acc update host(a[0:n])
          }
          return 1;
        }
        """
        assert codes(lint_c(src)) == ["ACC108"]

    def test_acc108_update_outside_compute_is_clean(self):
        src = """
        int main() {
          int n = 4; int a[4];
          #pragma acc data copy(a[0:n])
          {
            #pragma acc update host(a[0:n])
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc109_reduction_var_also_private(self):
        d = Directive(kind="loop", clauses=[
            Clause("reduction", op="+", refs=[DataRef(name="s")]),
            Clause("private", refs=[DataRef(name="s")]),
        ])
        assert "ACC109" in codes(check_directive(d))

    def test_fortran_surface_is_checked_too(self):
        src = """
        program t
          integer :: x
          x = 0
          !$acc data private(x)
          x = 1
          !$acc end data
          main = 1
        end program t
        """
        assert codes(lint_f(src)) == ["ACC101"]

    def test_matrix_is_shared_with_the_compiler(self):
        from repro.compiler import pipeline

        assert pipeline.ALLOWED_CLAUSES is ALLOWED_CLAUSES

    def test_legal_clauses_versioned(self):
        assert "default" not in legal_clauses(ACC_10)["parallel"]
        assert "default" in legal_clauses(ACC_20)["parallel"]
        assert "enter data" not in legal_clauses(ACC_10)
        assert "enter data" in legal_clauses(ACC_20)


# ---------------------------------------------------------------------------
# pass 2: dependence / races (ACC2xx)
# ---------------------------------------------------------------------------


class TestDependence:
    def test_acc201_carried_dependence_under_independent(self):
        src = """
        int main() {
          int i, n = 8; int a[8];
          #pragma acc kernels copy(a[0:n])
          {
            #pragma acc loop independent
            for(i=1; i<n; i++) a[i] = a[i-1] + 1;
          }
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC201"]
        assert "loop-carried dependence" in diags[0].message

    def test_acc201_independent_without_dependence_is_clean(self):
        src = """
        int main() {
          int i, n = 8; int a[8], b[8];
          #pragma acc kernels copy(a[0:n]) copyin(b[0:n])
          {
            #pragma acc loop independent
            for(i=0; i<n; i++) a[i] = b[i] + 1;
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc202_unsynchronised_accumulation(self):
        src = """
        int main() {
          int i, s = 0, n = 8; int a[8];
          #pragma acc parallel copy(a[0:n], s)
          {
            #pragma acc loop gang
            for(i=0; i<n; i++) s = s + a[i];
          }
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC202"]
        assert "reduction" in diags[0].hint

    def test_acc202_with_reduction_clause_is_clean(self):
        src = """
        int main() {
          int i, s = 0, n = 8; int a[8];
          #pragma acc parallel copy(a[0:n], s)
          {
            #pragma acc loop gang reduction(+:s)
            for(i=0; i<n; i++) s = s + a[i];
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc203_shared_scalar_write(self):
        src = """
        int main() {
          int i, t = 0, n = 8; int a[8];
          #pragma acc parallel copy(a[0:n])
          {
            #pragma acc loop gang
            for(i=0; i<n; i++) t = a[i];
          }
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC203"]
        assert "'t'" in diags[0].message

    def test_acc203_one_diagnostic_per_scalar(self):
        src = """
        int main() {
          int i, t = 0, n = 8; int a[8];
          #pragma acc parallel copy(a[0:n])
          {
            #pragma acc loop gang
            for(i=0; i<n; i++) { t = a[i]; t = a[i] + 1; }
          }
          return 1;
        }
        """
        assert codes(lint_c(src)) == ["ACC203"]

    def test_privatisation_on_loop_suppresses_race(self):
        src = """
        int main() {
          int i, t = 0, n = 8; int a[8];
          #pragma acc parallel copy(a[0:n])
          {
            #pragma acc loop gang private(t)
            for(i=0; i<n; i++) { t = a[i]; a[i] = t + 1; }
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_privatisation_on_enclosing_construct_suppresses_race(self):
        src = """
        int main() {
          int i, t = 0, n = 8; int a[8];
          #pragma acc parallel copy(a[0:n]) private(t)
          {
            #pragma acc loop gang
            for(i=0; i<n; i++) { t = a[i]; a[i] = t + 1; }
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_declaration_inside_body_suppresses_race(self):
        src = """
        int main() {
          int i, n = 8; int a[8];
          #pragma acc parallel copy(a[0:n])
          {
            #pragma acc loop gang
            for(i=0; i<n; i++) { int t = a[i]; a[i] = t + 1; }
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_seq_loop_is_not_workshared(self):
        src = """
        int main() {
          int i, last = 0, n = 8;
          #pragma acc parallel
          {
            #pragma acc loop seq
            for(i=0; i<n; i++) last = i;
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_bare_loop_in_kernels_is_not_workshared(self):
        # the implementation *may* parallelise it, but the template does
        # not assert parallelism — conservatively not analysed
        src = """
        int main() {
          int i, t = 0, n = 8; int a[8];
          #pragma acc kernels copy(a[0:n])
          {
            #pragma acc loop
            for(i=0; i<n; i++) t = a[i];
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_inner_reduction_not_charged_to_outer_loop(self):
        # the paper's num_workers pattern: outer gang loop privatises the
        # accumulator, inner worker loop reduces into it
        src = """
        int main() {
          int i, j, s = 0, n = 4; int a[4];
          #pragma acc parallel copy(a[0:n])
          {
            #pragma acc loop gang private(s)
            for(i=0; i<n; i++) {
              s = 0;
              #pragma acc loop worker reduction(+:s)
              for(j=0; j<n; j++) s = s + j;
              a[i] = s;
            }
          }
          return 1;
        }
        """
        assert lint_c(src) == []


# ---------------------------------------------------------------------------
# pass 3: corpus lint (ACC3xx)
# ---------------------------------------------------------------------------


_FUNCTIONAL_OK = """
int main() {
  int i, n = 4; int a[4];
  <acctv:check>
  #pragma acc parallel loop copy(a[0:n])
  </acctv:check>
  for(i=0; i<n; i++) a[i] = i;
  return 1;
}
"""


class TestCorpusLint:
    def test_acc301_unparseable_template(self):
        t = template("int main() { return 1;\n")  # unclosed brace
        diags = lint_template(t)
        assert codes(diags) == ["ACC301"]
        assert diags[0].loc.line > 0

    def test_clean_template(self):
        assert lint_template(template(_FUNCTIONAL_OK)) == []

    def test_acc302_cross_touching_unrelated_code(self):
        code = """
int main() {
  int i, n = 4; int a[4];
  #pragma acc parallel loop copy(a[0:n])
  for(i=0; i<n; i++) a[i] = i;
  <acctv:check>
  for(i=0; i<n; i++) if (a[i] != i) return 0;
  </acctv:check>
  <acctv:crosscheck>
  for(i=0; i<n; i++) if (a[i] != 0) return 0;
  </acctv:crosscheck>
  return 1;
}
"""
        diags = lint_template(template(code))
        assert "ACC302" in codes(diags)

    def test_acc302_directive_centred_block_is_allowed(self):
        # the loop_independent pattern: the cross swaps the whole loop,
        # including its body, because the block contains the directive
        code = """
int main() {
  int i, n = 4; int a[4];
  #pragma acc kernels copy(a[0:n])
  {
  <acctv:check>
  #pragma acc loop independent
  for(i=0; i<n; i++) a[i] = i;
  </acctv:check>
  <acctv:crosscheck>
  #pragma acc loop
  for(i=0; i<n; i++) a[i] = i + 1;
  </acctv:crosscheck>
  }
  return 1;
}
"""
        diags = lint_template(template(code))
        assert "ACC302" not in codes(diags)

    def test_acc303_vacuous_substitution(self):
        code = """
int main() {
  int i, n = 4; int a[4];
  #pragma acc parallel loop copy(a[0:n])
  for(i=0; i<n; i++) a[i] = i;
  <acctv:check>
  #pragma acc wait
  </acctv:check>
  <acctv:crosscheck>
  #pragma acc wait
  </acctv:crosscheck>
  return 1;
}
"""
        t = template(code, crossexpect="different")
        assert "ACC303" in codes(lint_template(t))
        # declared 'same' is coherent (the async pass still flags the
        # wait-with-no-async-work fixture as ACC502)
        t2 = template(code, crossexpect="same")
        assert codes(lint_template(t2)) == ["ACC502"]

    def test_shipped_corpus_is_clean(self):
        report = lint_suite(openacc10_suite())
        assert report.checked > 0
        assert report.clean
        assert report.codes() == {}

    def test_json_rendering(self):
        report = lint_suite(openacc10_suite())
        payload = json.loads(render_lint_json(report))
        assert payload["format"] == "repro.lint/v1"
        assert payload["templates_checked"] == report.checked
        assert payload["clean"] is True


# ---------------------------------------------------------------------------
# harness lint gate
# ---------------------------------------------------------------------------


_BAD_TEMPLATE = """
int main() {
  int x = 0;
  #pragma acc data private(x)
  { x = 1; }
  return 1;
}
"""


class TestHarnessGate:
    def make_suite(self):
        return openacc10_suite()

    def test_static_error_attribution(self):
        t = template(_BAD_TEMPLATE, name="bad.c")
        runner = ValidationRunner(config=HarnessConfig(iterations=2, lint=True))
        result = runner.run_template(t)
        assert not result.passed
        assert result.failure_kind is FailureKind.STATIC_ERROR
        assert "ACC101" in result.functional.failure_detail()
        # the unit never reached the compiler
        assert result.functional.iterations == []
        assert result.cross is None

    def test_clean_template_unaffected_by_gate(self):
        t = template(_FUNCTIONAL_OK, name="ok.c")
        on = ValidationRunner(config=HarnessConfig(iterations=2, lint=True))
        off = ValidationRunner(config=HarnessConfig(iterations=2))
        assert on.run_template(t).passed
        assert off.run_template(t).passed

    def test_gate_off_by_default(self):
        t = template(_BAD_TEMPLATE, name="bad.c")
        runner = ValidationRunner(config=HarnessConfig(iterations=1))
        result = runner.run_template(t)
        # without the gate the program still compiles and runs (the
        # simulated compiler accepts it or not — but never STATIC_ERROR)
        assert result.failure_kind is not FailureKind.STATIC_ERROR

    def test_reports_identical_across_policies(self):
        suite = self.make_suite()
        rendered = []
        for policy, workers in (("serial", 1), ("thread", 4), ("process", 2)):
            config = HarnessConfig(
                iterations=2, lint=True, policy=policy, workers=workers,
                feature_prefixes=["loop"],
            )
            report = ValidationRunner(config=config).run_suite(suite)
            rendered.append(render_text(report))
        assert rendered[0] == rendered[1] == rendered[2]

    def test_static_error_journal_roundtrip(self):
        from repro.journal.codec import decode_result, encode_result

        t = template(_BAD_TEMPLATE, name="bad.c")
        runner = ValidationRunner(config=HarnessConfig(iterations=1, lint=True))
        result = runner.run_template(t)
        payload = json.loads(json.dumps(encode_result(result)))
        back = decode_result(payload, t)
        assert back.functional.static_error == result.functional.static_error
        assert back.failure_kind is FailureKind.STATIC_ERROR

    def test_obs_counters(self):
        from repro.obs import Tracer

        tracer = Tracer()
        t = template(_BAD_TEMPLATE, name="bad.c")
        runner = ValidationRunner(
            config=HarnessConfig(iterations=1, lint=True), tracer=tracer
        )
        runner.run_template(t)
        counters = tracer.metrics.snapshot()["counters"]
        assert counters.get("lint.checked") == 1
        assert counters.get("lint.diagnostic.ACC101") == 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_lint_all_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "lint-clean" in out
        assert "0 template(s)" not in out

    def test_lint_json_output(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "lint.json"
        assert main(["lint", "--format", "json",
                     "--output", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["clean"] is True
        assert payload["templates_checked"] > 0

    def test_lint_empty_selection_fails(self, capsys):
        from repro.cli import main

        assert main(["lint", "--feature", "no.such.feature"]) == 1

    def test_validate_lint_flag_plumbs_through(self):
        from repro.cli import build_parser, _config

        args = build_parser().parse_args(
            ["validate", "--lint", "--iterations", "1"]
        )
        assert _config(args).lint is True


# ---------------------------------------------------------------------------
# registry did-you-mean (satellite)
# ---------------------------------------------------------------------------


def _registry_template(feature, name="t1"):
    return f"""<acctv:test>
<acctv:testname>{name}</acctv:testname>
<acctv:directive>{feature}</acctv:directive>
<acctv:language>c</acctv:language>
<acctv:testcode>
int main() {{ return 1; }}
</acctv:testcode>
</acctv:test>"""


class TestRegistrySuggestions:
    def test_unknown_feature_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'parallel.async'"):
            SuiteRegistry([_registry_template("parallel.asink")])

    def test_duplicate_names_both_templates_and_suggests(self):
        with pytest.raises(ValueError) as err:
            SuiteRegistry([
                _registry_template("parallel.async", "t1"),
                _registry_template("parallel.async", "t2"),
            ])
        message = str(err.value)
        assert "t1" in message and "t2" in message
        assert "did you mean" in message
