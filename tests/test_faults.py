"""Tests for the resilience layer: deterministic fault injection
(:mod:`repro.faults`), the engine's bounded retry / pool-respawn paths,
the cooperative template timeout, and the Titan quarantine triage.

The load-bearing property throughout: with *transient* injected faults and
a retry budget, a run produces a report byte-identical to the fault-free
run of the same configuration — faults are healed, never absorbed into
verdicts.  Persistent faults exhaust the budget and degrade to
HARNESS_ERROR rows; the suite always completes.
"""

import pytest

from repro.compiler import CompileCache, Compiler, CompilerCrashError
from repro.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultyCompiler,
    InjectedCompilerCrash,
    InjectedRuntimeCrash,
    NULL_INJECTOR,
)
from repro.harness import (
    HarnessConfig,
    MAX_POOL_DEATHS,
    ValidationRunner,
    render_csv,
    render_text,
)
from repro.harness.runner import FailureKind, TemplateTimeout
from repro.harness.titan import (
    STACK_CUDA,
    TitanCluster,
    TitanHarness,
)
from repro.obs import Tracer
from repro.suite import openacc10_suite


def _run(prefixes, **config_kwargs):
    defaults = dict(iterations=1, languages=("c",), run_cross=False,
                    feature_prefixes=list(prefixes))
    defaults.update(config_kwargs)
    config = HarnessConfig(**defaults)
    runner = ValidationRunner(config=config)
    runner.sleeper = lambda s: None  # instant backoff in tests
    return runner.run_suite(openacc10_suite())


# ---------------------------------------------------------------------------
# FaultPlan: parsing and validation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_sites_and_options(self):
        plan = FaultPlan.parse(
            "worker=0.5, iteration=0.2, seed=7, stall-s=0.1, max-fires=2"
        )
        assert plan.worker_death == 0.5
        assert plan.iteration_crash == 0.2
        assert plan.seed == 7
        assert plan.stall_s == 0.1
        assert plan.max_fires == 2
        assert not plan.persistent

    def test_parse_persistent_flag(self):
        assert FaultPlan.parse("compile=1.0,persistent").persistent

    @pytest.mark.parametrize("spec", [
        "warp=0.5",            # unknown site
        "iteration",           # missing =rate
        "iteration=lots",      # unparsable rate
        "iteration=1.5",       # rate out of range
        "max-fires=0",
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_active_property(self):
        assert not FaultPlan().active
        assert FaultPlan(iteration_crash=0.1).active

    def test_describe_round_trips_through_parse(self):
        plan = FaultPlan(seed=3, worker_death=0.5, stall=0.2, stall_s=0.01)
        assert FaultPlan.parse(plan.describe()) == plan


# ---------------------------------------------------------------------------
# FaultInjector: deterministic decisions, transient gating
# ---------------------------------------------------------------------------


class TestInjector:
    def test_decisions_deterministic_across_injectors(self):
        plan = FaultPlan(seed=11, iteration_crash=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        keys = [f"unit{i}" for i in range(50)]
        assert [a.fires("iteration", 0.5, k) for k in keys] == \
               [b.fires("iteration", 0.5, k) for k in keys]

    def test_seed_changes_decisions(self):
        keys = [f"unit{i}" for i in range(50)]
        a = FaultInjector(FaultPlan(seed=1))
        b = FaultInjector(FaultPlan(seed=2))
        assert [a.fires("iteration", 0.5, k) for k in keys] != \
               [b.fires("iteration", 0.5, k) for k in keys]

    def test_transient_fault_heals_on_retry(self):
        injector = FaultInjector(FaultPlan(seed=0, iteration_crash=1.0))
        assert injector.fires("iteration", 1.0, "k", attempt=0)
        assert not injector.fires("iteration", 1.0, "k", attempt=1)

    def test_attempt_offset_counts_as_later_attempt(self):
        plan = FaultPlan(seed=0, iteration_crash=1.0, attempt_offset=1)
        assert not FaultInjector(plan).fires("iteration", 1.0, "k", attempt=0)

    def test_persistent_fires_on_every_attempt(self):
        plan = FaultPlan(seed=0, iteration_crash=1.0, persistent=True)
        injector = FaultInjector(plan)
        assert all(injector.fires("iteration", 1.0, "k", attempt=n)
                   for n in range(5))

    def test_ambient_attempt_scoping(self):
        injector = FaultInjector(FaultPlan(seed=0, iteration_crash=1.0))
        with injector.attempt("k", 1):
            assert injector.current_attempt() == 1
            assert not injector.fires("iteration", 1.0, "k")
        assert injector.current_attempt() == 0
        assert injector.fires("iteration", 1.0, "k")

    def test_iteration_site_raises_typed_fault(self):
        injector = FaultInjector(FaultPlan(seed=0, iteration_crash=1.0))
        with pytest.raises(InjectedRuntimeCrash):
            injector.iteration_site("k")

    def test_stall_site_uses_injected_sleeper(self):
        naps = []
        injector = FaultInjector(
            FaultPlan(seed=0, stall=1.0, stall_s=0.25), sleeper=naps.append
        )
        injector.iteration_site("k")
        assert naps == [0.25]

    def test_null_injector_never_fires(self):
        assert not NULL_INJECTOR.enabled
        assert not NULL_INJECTOR.fires("iteration", 1.0, "k")
        NULL_INJECTOR.iteration_site("k")  # no-op, no raise

    def test_sites_cover_documented_list(self):
        assert set(FAULT_SITES) == {
            "compile", "iteration", "worker", "stall", "journal",
            "shard_death", "pod", "conn", "frame", "slow_client", "segment",
        }


# ---------------------------------------------------------------------------
# compile cache contract under injected compiler crashes (satellite)
# ---------------------------------------------------------------------------


class TestCacheCrashContract:
    def test_crash_surfaces_as_compile_failure_never_raises(self):
        injector = FaultInjector(FaultPlan(seed=0, compile_crash=1.0))
        compiler = FaultyCompiler(Compiler(), injector)
        cache = CompileCache()
        outcome = cache.get_or_compile(compiler, "int main(){return 1;}",
                                       "c", "t.c")
        assert outcome.program is None
        assert isinstance(outcome.error, CompilerCrashError)
        assert isinstance(outcome.error.cause, InjectedCompilerCrash)

    def test_crash_accounts_miss_but_is_not_cached(self):
        injector = FaultInjector(FaultPlan(seed=0, compile_crash=1.0))
        compiler = FaultyCompiler(Compiler(), injector)
        cache = CompileCache()
        crashed = cache.get_or_compile(compiler, "int main(){return 1;}",
                                       "c", "t.c")
        assert isinstance(crashed.error, CompilerCrashError)
        assert cache.misses == 1 and cache.hits == 0
        assert len(cache) == 0  # a transient crash must not poison the cache
        # the same source compiles fine on the next attempt (fault healed)
        with injector.attempt("t.c", 1):
            healed = cache.get_or_compile(compiler, "int main(){return 1;}",
                                          "c", "t.c")
        assert healed.error is None and healed.program is not None
        assert not healed.hit and cache.misses == 2


# ---------------------------------------------------------------------------
# engine retry layer: healing, backoff, HARNESS_ERROR degradation
# ---------------------------------------------------------------------------


class TestRetryLayer:
    def test_transient_faults_heal_to_byte_identical_report(self):
        clean = _run(["update"])
        healed = _run(["update"],
                      retries=2,
                      fault_plan=FaultPlan(seed=7, iteration_crash=1.0,
                                           compile_crash=0.5))
        assert render_text(healed) == render_text(clean)
        assert render_csv(healed) == render_csv(clean)

    def test_faulty_runs_are_deterministic(self):
        kwargs = dict(retries=0,
                      fault_plan=FaultPlan(seed=3, iteration_crash=0.5))
        first, second = _run(["update"], **kwargs), _run(["update"], **kwargs)
        assert render_text(first) == render_text(second)

    def test_backoff_schedule_and_retry_counter(self):
        config = HarnessConfig(
            iterations=1, languages=("c",), run_cross=False,
            feature_prefixes=["wait"], retries=3, retry_backoff_s=0.1,
            fault_plan=FaultPlan(seed=0, iteration_crash=1.0, persistent=True),
        )
        tracer = Tracer()
        runner = ValidationRunner(config=config, tracer=tracer)
        naps = []
        runner.sleeper = naps.append
        report = runner.run_suite(openacc10_suite())
        # persistent fault: all 3 retries consumed, exponential backoff
        assert naps == [0.1, 0.2, 0.4]
        assert tracer.metrics.counter("engine.retry").value == 3
        assert tracer.metrics.counter("engine.harness_error").value == 1
        [result] = report.results
        assert result.failure_kind is FailureKind.HARNESS_ERROR

    def test_persistent_faults_complete_suite_as_harness_errors(self):
        report = _run(["update"], retries=1,
                      fault_plan=FaultPlan(seed=7, iteration_crash=1.0,
                                           persistent=True))
        assert len(report.results) == 4  # the suite completed
        kinds = report.by_failure_kind()
        assert kinds == {FailureKind.HARNESS_ERROR: 4}
        for result in report.results:
            assert not result.passed
            assert "harness gave up" in result.functional.failure_detail()
        # harness-error units never reached the compiler: no fake cache
        # traffic in the metrics
        assert report.metrics.cache_hits == 0
        assert report.metrics.cache_misses == 0

    def test_harness_error_renders_without_crashing(self):
        report = _run(["wait"], fault_plan=FaultPlan(
            seed=0, iteration_crash=1.0, persistent=True))
        assert "harness_error" in render_text(report)
        assert "harness_error" in render_csv(report)


# ---------------------------------------------------------------------------
# template wall-clock timeout
# ---------------------------------------------------------------------------


class TestTemplateTimeout:
    def test_stalled_template_degrades_to_harness_error(self):
        report = _run(["wait"], retries=0, template_timeout_s=0.02,
                      fault_plan=FaultPlan(seed=0, stall=1.0, stall_s=0.06,
                                           persistent=True))
        [result] = report.results
        assert result.failure_kind is FailureKind.HARNESS_ERROR
        assert "wall-clock budget" in result.functional.failure_detail()

    def test_transient_stall_heals_on_retry(self):
        clean = _run(["wait"])
        healed = _run(["wait"], retries=1, template_timeout_s=0.02,
                      fault_plan=FaultPlan(seed=0, stall=1.0, stall_s=0.06))
        assert render_text(healed) == render_text(clean)

    def test_check_deadline_raises_template_timeout(self):
        with pytest.raises(TemplateTimeout, match="wall-clock budget"):
            ValidationRunner._check_deadline(0.0, "unit")

    def test_no_deadline_when_unset(self):
        ValidationRunner._check_deadline(None, "unit")  # no raise


# ---------------------------------------------------------------------------
# process-pool worker death
# ---------------------------------------------------------------------------


class TestWorkerDeath:
    def test_pool_respawn_heals_to_byte_identical_report(self):
        clean = _run(["update"])
        tracer = Tracer()
        config = HarnessConfig(
            iterations=1, languages=("c",), run_cross=False,
            feature_prefixes=["update"], policy="process", workers=2,
            retries=1, retry_backoff_s=0.0,
            fault_plan=FaultPlan(seed=7, worker_death=0.5,
                                 iteration_crash=0.3),
        )
        runner = ValidationRunner(config=config, tracer=tracer)
        report = runner.run_suite(openacc10_suite())
        assert render_text(report) == render_text(clean)
        assert render_csv(report) == render_csv(clean)
        assert tracer.metrics.counter("engine.worker_lost").value >= 1

    def test_persistent_deaths_fall_back_to_serial(self):
        clean = _run(["update"])
        config = HarnessConfig(
            iterations=1, languages=("c",), run_cross=False,
            feature_prefixes=["update"], policy="process", workers=2,
            retry_backoff_s=0.0,
            fault_plan=FaultPlan(seed=7, worker_death=1.0, persistent=True),
        )
        runner = ValidationRunner(config=config)
        report = runner.run_suite(openacc10_suite())
        # every pool died MAX_POOL_DEATHS+1 times; the parent finished the
        # work serially — degraded throughput, complete and correct report
        assert render_text(report) == render_text(clean)
        assert set(report.metrics.worker_busy_s) == {"fallback"}
        assert MAX_POOL_DEATHS >= 1


# ---------------------------------------------------------------------------
# Titan quarantine triage
# ---------------------------------------------------------------------------


def _titan(cluster, fault_plan=None, retries=0, recheck=1, tracer=None):
    return TitanHarness(
        cluster, openacc10_suite(),
        config=HarnessConfig(iterations=1, run_cross=False, languages=("c",),
                             retries=retries, fault_plan=fault_plan),
        feature_prefixes=["update"],
        tracer=tracer,
        recheck=recheck,
    )


class TestTitanQuarantine:
    def test_transient_fault_not_quarantined(self):
        # a transient injected fault flags the node once; the recheck (a
        # later attempt via attempt_offset) comes back clean
        cluster = TitanCluster(num_nodes=2, degraded_fraction=0.0, seed=5)
        tracer = Tracer()
        harness = _titan(cluster,
                         fault_plan=FaultPlan(seed=0, iteration_crash=1.0),
                         tracer=tracer)
        checks = harness.sweep(sample_size=1, seed=0, stacks=(STACK_CUDA,))
        assert [c.flagged for c in checks] == [True]
        assert checks[0].harness_errors > 0
        assert harness.quarantined == {}
        assert tracer.metrics.counter("titan.transient").value == 1
        assert tracer.metrics.counter("titan.rechecks").value == 1

    def test_persistent_fault_quarantines_node(self):
        cluster = TitanCluster(num_nodes=2, degraded_fraction=0.0, seed=5)
        tracer = Tracer()
        harness = _titan(
            cluster,
            fault_plan=FaultPlan(seed=0, iteration_crash=1.0,
                                 persistent=True),
            tracer=tracer,
        )
        checks = harness.sweep(sample_size=1, seed=0, stacks=(STACK_CUDA,))
        [check] = checks
        assert check.flagged
        assert set(harness.quarantined) == {check.node_id}
        record = harness.quarantined[check.node_id]
        assert record.stack == STACK_CUDA
        assert "harness error" in record.detail
        assert tracer.metrics.counter("titan.quarantined").value == 1

    def test_quarantined_nodes_excluded_from_sweeps(self):
        cluster = TitanCluster(num_nodes=3, degraded_fraction=0.0, seed=5)
        harness = _titan(cluster, fault_plan=FaultPlan(
            seed=0, iteration_crash=1.0, persistent=True))
        harness.sweep(sample_size=1, seed=0, stacks=(STACK_CUDA,))
        [bad_node] = list(harness.quarantined)
        later = harness.sweep(sample_size=3, seed=1, stacks=(STACK_CUDA,))
        assert bad_node not in {c.node_id for c in later}

    def test_degraded_node_quarantined_then_recovers_after_heal(self):
        # pin the degradation to a fault the "update" slice detects
        cluster = TitanCluster(
            num_nodes=2, degraded_fraction=0.5, seed=5,
            degrade=lambda behavior, nid: behavior.with_(ignore_update=True),
        )
        [degraded] = [n for n in cluster.nodes if not n.healthy]
        tracer = Tracer()
        harness = _titan(cluster, tracer=tracer)
        harness.sweep(sample_size=2, seed=0, stacks=(STACK_CUDA,))
        assert set(harness.quarantined) == {degraded.node_id}
        # still broken: the recovery probe keeps it quarantined
        assert harness.probe_quarantined() == []
        assert harness.quarantined[degraded.node_id].probes == 1
        # hardware swap, then the next probe releases it
        cluster.heal(degraded.node_id)
        assert harness.probe_quarantined() == [degraded.node_id]
        assert harness.quarantined == {}
        assert tracer.metrics.counter("titan.recovered").value == 1

    def test_timeline_probes_quarantine_each_epoch(self):
        cluster = TitanCluster(
            num_nodes=3, degraded_fraction=0.34, seed=5,
            degrade=lambda behavior, nid: behavior.with_(ignore_update=True),
        )
        harness = _titan(cluster)
        records = harness.timeline(epochs=2, sample_size=3)
        assert all("quarantined" in r and "recovered" in r for r in records)
        assert records[0]["quarantined"] >= 1.0
