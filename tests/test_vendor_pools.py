"""Tests for the deterministic feature pools behind the beta-version
bug inventories."""

import pytest

from repro.compiler.vendors.pools import CORE_FEATURES, eligible_pool, take
from repro.suite import openacc10_suite


@pytest.fixture(scope="module")
def features():
    return openacc10_suite().features()


class TestEligiblePool:
    def test_excludes_core_and_env(self, features):
        pool = eligible_pool(features)
        assert not set(pool) & CORE_FEATURES
        assert not any(f.startswith("env.") for f in pool)

    def test_sorted_and_deterministic(self, features):
        pool = eligible_pool(features)
        assert pool == sorted(pool)
        assert pool == eligible_pool(list(reversed(features)))

    def test_large_enough_for_worst_inventory(self, features):
        # CAPS 3.0.8 needs 70 Fortran features (Table I)
        assert len(eligible_pool(features)) >= 70

    def test_core_features_exist_in_suite(self, features):
        missing = CORE_FEATURES - set(features)
        # `data` has no bare-directive test (its semantics are entirely in
        # its clauses, each of which has one); everything else in the core
        # set is directly covered
        assert missing <= {"data"}, missing


class TestTake:
    def test_exact_count(self, features):
        pool = eligible_pool(features)
        assert len(take(pool, 35)) == 35

    def test_prefix_stability(self, features):
        """A smaller inventory is a prefix of a larger one — later versions
        'fix' bugs rather than shuffling them."""
        pool = eligible_pool(features)
        assert take(pool, 23) == take(pool, 35)[:23]

    def test_exclusion(self, features):
        pool = eligible_pool(features)
        excluded = pool[0]
        taken = take(pool, 10, exclude=[excluded])
        assert excluded not in taken

    def test_overflow_raises(self, features):
        pool = eligible_pool(features)
        with pytest.raises(ValueError):
            take(pool, len(pool) + 1)
