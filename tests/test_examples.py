"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "100.00% pass" in proc.stdout
        assert "certainty" in proc.stdout

    def test_write_a_test(self):
        proc = run_example("write_a_test.py")
        assert proc.returncode == 0, proc.stderr
        assert "certainty pc = 100.0%" in proc.stdout
        assert "FAIL [wrong_value]" in proc.stdout

    def test_spec_ambiguities(self):
        proc = run_example("spec_ambiguities.py")
        assert proc.returncode == 0, proc.stderr
        assert "num_gangs(4): each element incremented 4 time(s)" in proc.stdout
        assert "acc_device_cuda" in proc.stdout

    def test_titan_production(self):
        proc = run_example("titan_production.py")
        assert proc.returncode == 0, proc.stderr
        assert "FLAGGED" in proc.stdout
        assert "bad CUDA-stack rollout" in proc.stdout

    def test_compiler_evolution(self):
        proc = run_example("compiler_evolution.py", "cray")
        assert proc.returncode == 0, proc.stderr
        assert "CRAY — c" in proc.stdout or "CRAY" in proc.stdout
        assert "features still failing" in proc.stdout

    def test_validate_vendor(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "validate_vendor.py"),
             "caps", "3.2.3"],
            capture_output=True, text=True, timeout=420, cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        assert "99.0% pass" in proc.stdout
        assert (tmp_path / "reports" / "caps-3.2.3-c.html").exists()
        assert (tmp_path / "reports" / "caps-3.2.3-fortran-bugs.txt").exists()
