"""Smoke tests: every example script must run cleanly end to end.

Regression guard for the cwd bug: each example is launched from a *tmp
directory* with ``PYTHONPATH`` stripped from the environment, so the only
way the script can find ``repro`` is its own ``sys.path`` bootstrap
(derived from ``__file__``).  Before the bootstrap existed, any example run
outside the repo root died with ``ModuleNotFoundError: No module named
'repro'``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, cwd, timeout: int = 300):
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, cwd=cwd, env=env,
    )


class TestExamples:
    def test_quickstart(self, tmp_path):
        proc = run_example("quickstart.py", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "100.00% pass" in proc.stdout
        assert "certainty" in proc.stdout

    def test_write_a_test(self, tmp_path):
        proc = run_example("write_a_test.py", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "certainty pc = 100.0%" in proc.stdout
        assert "FAIL [wrong_value]" in proc.stdout

    def test_spec_ambiguities(self, tmp_path):
        proc = run_example("spec_ambiguities.py", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "num_gangs(4): each element incremented 4 time(s)" in proc.stdout
        assert "acc_device_cuda" in proc.stdout

    def test_titan_production(self, tmp_path):
        proc = run_example("titan_production.py", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "FLAGGED" in proc.stdout
        assert "bad CUDA-stack rollout" in proc.stdout

    def test_compiler_evolution(self, tmp_path):
        proc = run_example("compiler_evolution.py", "cray", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "CRAY — c" in proc.stdout or "CRAY" in proc.stdout
        assert "features still failing" in proc.stdout

    def test_validate_vendor(self, tmp_path):
        proc = run_example("validate_vendor.py", "caps", "3.2.3",
                           cwd=tmp_path, timeout=420)
        assert proc.returncode == 0, proc.stderr
        assert "99.0% pass" in proc.stdout
        # reports land relative to the launch cwd, not the repo
        assert (tmp_path / "reports" / "caps-3.2.3-c.html").exists()
        assert (tmp_path / "reports" / "caps-3.2.3-fortran-bugs.txt").exists()
