"""Tests for the OpenACC execution model: gang/worker/vector semantics,
data environments, reductions, async behaviour and host_data."""

import pytest

from repro.accsim.errors import AccRuntimeError, PresentError
from repro.compiler import Compiler, CompilerBehavior


CC = Compiler()


def run(src: str, behavior: CompilerBehavior = None, lang="c"):
    compiler = Compiler(behavior) if behavior else CC
    return compiler.compile(src, lang).run()


class TestGangSemantics:
    def test_redundant_execution_without_loop(self):
        """Fig. 2b: each gang increments every element."""
        src = """
int main(){
  int i, a[20];
  for(i=0;i<20;i++) a[i]=0;
  #pragma acc parallel num_gangs(7) copy(a[0:20])
  {
    for(i=0;i<20;i++) a[i] = a[i] + 1;
  }
  return a[3];
}
"""
        assert run(src).value == 7

    def test_worksharing_with_loop(self):
        """Fig. 2a: each element incremented exactly once."""
        src = """
int main(){
  int i, a[20];
  for(i=0;i<20;i++) a[i]=0;
  #pragma acc parallel num_gangs(7) copy(a[0:20])
  {
    #pragma acc loop
    for(i=0;i<20;i++) a[i] = a[i] + 1;
  }
  return a[3];
}
"""
        assert run(src).value == 1

    def test_default_gang_count_from_profile(self):
        src = """
int main(){
  int g = 0;
  #pragma acc parallel reduction(+:g)
  { g++; }
  return g;
}
"""
        behavior = CompilerBehavior(default_num_gangs=5)
        assert run(src, behavior).value == 5

    def test_gang_partition_is_complete_and_disjoint(self):
        src = """
int main(){
  int i, a[33];
  for(i=0;i<33;i++) a[i]=0;
  #pragma acc parallel num_gangs(4) copy(a[0:33])
  {
    #pragma acc loop gang
    for(i=0;i<33;i++) a[i]++;
  }
  int bad = 0;
  for(i=0;i<33;i++) if (a[i] != 1) bad++;
  return bad == 0;
}
"""
        assert run(src).value == 1

    def test_seq_inside_parallel_runs_per_gang(self):
        src = """
int main(){
  int i, a[6];
  for(i=0;i<6;i++) a[i]=0;
  #pragma acc parallel num_gangs(3) copy(a[0:6])
  {
    #pragma acc loop seq
    for(i=0;i<6;i++) a[i]++;
  }
  return a[0];
}
"""
        assert run(src).value == 3


class TestWorkerVector:
    def test_worker_loop_covers_all_iterations(self):
        src = """
int main(){
  int i, a[16];
  for(i=0;i<16;i++) a[i]=0;
  #pragma acc parallel num_gangs(1) num_workers(4) copy(a[0:16])
  {
    #pragma acc loop worker
    for(i=0;i<16;i++) a[i]++;
  }
  int bad = 0;
  for(i=0;i<16;i++) if (a[i] != 1) bad++;
  return bad == 0;
}
"""
        assert run(src).value == 1

    def test_fig1_ambiguity_worker_without_gang(self):
        """A worker loop without a gang loop executes once per gang
        (the redundant-execution reading of the Fig. 1 ambiguity)."""
        src = """
int main(){
  int i, a[8];
  for(i=0;i<8;i++) a[i]=0;
  #pragma acc parallel num_gangs(3) num_workers(2) copy(a[0:8])
  {
    #pragma acc loop worker
    for(i=0;i<8;i++) a[i]++;
  }
  return a[0];
}
"""
        assert run(src).value == 3

    def test_gang_worker_combined(self):
        src = """
int main(){
  int i, a[24];
  for(i=0;i<24;i++) a[i]=0;
  #pragma acc parallel num_gangs(3) num_workers(2) copy(a[0:24])
  {
    #pragma acc loop gang worker
    for(i=0;i<24;i++) a[i]++;
  }
  int bad = 0;
  for(i=0;i<24;i++) if (a[i] != 1) bad++;
  return bad == 0;
}
"""
        assert run(src).value == 1

    def test_worker_ignored_profile(self):
        """PGI-style worker_ignored collapses the worker level to one lane
        without changing results."""
        src = """
int main(){
  int i, a[8];
  for(i=0;i<8;i++) a[i]=0;
  #pragma acc parallel num_gangs(1) num_workers(4) copy(a[0:8])
  {
    #pragma acc loop worker
    for(i=0;i<8;i++) a[i]++;
  }
  int bad = 0;
  for(i=0;i<8;i++) if (a[i] != 1) bad++;
  return bad == 0;
}
"""
        assert run(src, CompilerBehavior(worker_ignored=True)).value == 1

    def test_vector_loop_out_of_order(self):
        """Cyclic lane distribution must break an order-sensitive chain."""
        src = """
int main(){
  int i, last = -1, in_order = 1;
  #pragma acc parallel num_gangs(1) copy(last, in_order)
  {
    #pragma acc loop vector
    for(i=0;i<32;i++){
      in_order = ((i - last) == 1) && in_order;
      last = i;
    }
  }
  return in_order;
}
"""
        assert run(src).value == 0


class TestKernelsSemantics:
    def test_body_executes_once(self):
        src = """
int main(){
  int count = 0;
  #pragma acc kernels copy(count)
  {
    count = count + 1;
  }
  return count;
}
"""
        assert run(src).value == 1

    def test_dependence_analysis_serialises(self):
        src = """
int main(){
  int i, a[30];
  for(i=0;i<30;i++) a[i]=0;
  a[0] = 1;
  #pragma acc kernels copy(a[0:30])
  {
    #pragma acc loop
    for(i=1;i<30;i++) a[i] = a[i-1] + 1;
  }
  return a[29] == 30;
}
"""
        assert run(src).value == 1

    def test_independent_forces_parallel(self):
        src = """
int main(){
  int i, a[30];
  for(i=0;i<30;i++) a[i]=0;
  a[0] = 1;
  #pragma acc kernels copy(a[0:30])
  {
    #pragma acc loop independent
    for(i=1;i<30;i++) a[i] = a[i-1] + 1;
  }
  return a[29] == 30;
}
"""
        assert run(src).value == 0

    def test_kernels_scalar_copy_semantics(self):
        """In kernels regions scalars default to copy (writes propagate)."""
        src = """
int main(){
  int t = 1;
  #pragma acc kernels
  {
    t = 99;
  }
  return t;
}
"""
        assert run(src).value == 99

    def test_parallel_scalar_firstprivate_semantics(self):
        """In parallel regions scalars default to firstprivate."""
        src = """
int main(){
  int t = 1;
  #pragma acc parallel num_gangs(4)
  {
    t = 99;
  }
  return t;
}
"""
        assert run(src).value == 1


class TestReductions:
    def test_construct_reduction_combines_original(self):
        src = """
int main(){
  int x = 10;
  #pragma acc parallel num_gangs(6) reduction(+:x)
  { x += 2; }
  return x;
}
"""
        assert run(src).value == 10 + 12

    def test_worker_loop_reduction(self):
        src = """
int main(){
  int total = 0;
  #pragma acc parallel num_gangs(1) num_workers(4) copy(total)
  {
    #pragma acc loop worker reduction(+:total)
    for(int j=0;j<40;j++) total++;
  }
  return total;
}
"""
        assert run(src).value == 40

    def test_gang_loop_reduction_writes_back_once(self):
        src = """
int main(){
  int s = 5;
  #pragma acc parallel loop num_gangs(4) reduction(+:s)
  for(int i=0;i<10;i++) s += i;
  return s;
}
"""
        assert run(src).value == 5 + 45

    def test_mul_reduction(self):
        src = """
int main(){
  int p = 2;
  #pragma acc parallel loop reduction(*:p)
  for(int i=1;i<=5;i++) p *= i;
  return p == 240;
}
"""
        assert run(src).value == 1

    def test_max_reduction(self):
        src = """
int main(){
  int m = -100, i;
  int d[8];
  for(i=0;i<8;i++) d[i] = (i * 13) % 37;
  int expected = -100;
  for(i=0;i<8;i++) if (d[i] > expected) expected = d[i];
  #pragma acc parallel loop reduction(max:m) copyin(d[0:8])
  for(i=0;i<8;i++) m = (d[i] > m) ? d[i] : m;
  return m == expected;
}
"""
        assert run(src).value == 1

    def test_broken_reduction_behavior(self):
        src = """
int main(){
  int x = 0;
  #pragma acc parallel num_gangs(4) reduction(+:x)
  { x++; }
  return x;
}
"""
        behavior = CompilerBehavior(broken_reductions=frozenset({"+"}))
        assert run(src, behavior).value == 0  # combine suppressed


class TestDataEnvironment:
    def test_nested_present_reuse(self):
        src = """
int main(){
  int i, a[10], out[10];
  for(i=0;i<10;i++){ a[i]=i; out[i]=0; }
  #pragma acc data copyin(a[0:10])
  {
    #pragma acc parallel loop present(a[0:10]) copy(out[0:10])
    for(i=0;i<10;i++) out[i] = a[i] * 2;
  }
  return out[4] == 8;
}
"""
        assert run(src).value == 1

    def test_present_absent_crashes(self):
        src = """
int main(){
  int i, a[10];
  #pragma acc parallel loop present(a[0:10])
  for(i=0;i<10;i++) a[i] = i;
  return 1;
}
"""
        with pytest.raises(PresentError):
            run(src)

    def test_device_copy_isolated_until_exit(self):
        src = """
int main(){
  int i, a[5], mid = 0;
  for(i=0;i<5;i++) a[i]=1;
  #pragma acc data copy(a[0:5])
  {
    #pragma acc parallel loop present(a[0:5])
    for(i=0;i<5;i++) a[i] = 7;
    mid = a[0];
  }
  return (mid == 1) && (a[0] == 7);
}
"""
        assert run(src).value == 1

    def test_if_false_runs_on_host(self):
        src = """
int main(){
  int t = 1;
  #pragma acc parallel if (0)
  {
    t = acc_on_device(acc_device_not_host);
  }
  return t == 0;
}
"""
        # if(false): the region runs on the host, writes are local host
        # writes (no device data env), so t really becomes 0
        assert run(src).value == 1

    def test_update_midstream(self):
        src = """
int main(){
  int i, a[6], seen = 0;
  for(i=0;i<6;i++) a[i]=i;
  #pragma acc data copyin(a[0:6])
  {
    #pragma acc parallel loop present(a[0:6])
    for(i=0;i<6;i++) a[i] = a[i] * 10;
    #pragma acc update host(a[2:2])
    seen = a[2] + a[3];
  }
  return seen == 50;
}
"""
        assert run(src).value == 1

    def test_firstprivate_snapshot(self):
        src = """
int main(){
  int t = 3, i, b[4];
  for(i=0;i<4;i++) b[i]=0;
  #pragma acc parallel num_gangs(4) firstprivate(t) copy(b[0:4])
  {
    #pragma acc loop gang
    for(i=0;i<4;i++){ t = t + i; b[i] = t; }
  }
  return (b[0] == 3) && (b[3] == 6) && (t == 3);
}
"""
        assert run(src).value == 1

    def test_host_data_use_device(self):
        src = """
void scale(int *p, int n){
  int j;
  #pragma acc parallel deviceptr(p)
  {
    #pragma acc loop
    for(j=0;j<n;j++) p[j] *= 3;
  }
}
int main(){
  int i, a[4];
  for(i=0;i<4;i++) a[i] = i + 1;
  #pragma acc data copy(a[0:4])
  {
    #pragma acc host_data use_device(a)
    { scale(a, 4); }
  }
  return a[3] == 12;
}
"""
        assert run(src).value == 1

    def test_host_data_absent_crashes(self):
        src = """
int main(){
  int a[4];
  #pragma acc host_data use_device(a)
  { }
  return 1;
}
"""
        with pytest.raises(PresentError):
            run(src)

    def test_collapse_product_space(self):
        src = """
int main(){
  int i, j, m[4][5];
  for(i=0;i<4;i++) for(j=0;j<5;j++) m[i][j] = 0;
  #pragma acc parallel num_gangs(2) copy(m)
  {
    #pragma acc loop collapse(2)
    for(i=0;i<4;i++)
      for(j=0;j<5;j++)
        m[i][j]++;
  }
  int bad = 0;
  for(i=0;i<4;i++) for(j=0;j<5;j++) if (m[i][j] != 1) bad++;
  return bad == 0;
}
"""
        assert run(src).value == 1

    def test_collapse_requires_tight_nest(self):
        src = """
int main(){
  int i, j, s = 0;
  #pragma acc parallel num_gangs(1) copy(s)
  {
    #pragma acc loop collapse(2)
    for(i=0;i<3;i++){
      s = s + 1;
      for(j=0;j<3;j++) s = s + 1;
    }
  }
  return s;
}
"""
        with pytest.raises(AccRuntimeError):
            run(src)


class TestAsyncExecution:
    def test_async_defers_until_wait(self):
        src = """
int main(){
  int i, a[5], before, after;
  for(i=0;i<5;i++) a[i] = 0;
  #pragma acc parallel loop copy(a[0:5]) async(2)
  for(i=0;i<5;i++) a[i] = 9;
  before = a[0];
  #pragma acc wait(2)
  after = a[0];
  return (before == 0) && (after == 9);
}
"""
        assert run(src).value == 1

    def test_wait_all_without_tag(self):
        src = """
int main(){
  int i, a[5];
  for(i=0;i<5;i++) a[i] = 0;
  #pragma acc parallel loop copy(a[0:5]) async
  for(i=0;i<5;i++) a[i] = 4;
  #pragma acc wait
  return a[1] == 4;
}
"""
        assert run(src).value == 1

    def test_ignore_async_behavior(self):
        src = """
int main(){
  int i, a[5];
  for(i=0;i<5;i++) a[i] = 0;
  #pragma acc parallel loop copy(a[0:5]) async(1)
  for(i=0;i<5;i++) a[i] = 8;
  return a[0];
}
"""
        assert run(src, CompilerBehavior(ignore_async=True)).value == 8

    def test_pgi_wedge_requires_data_clauses(self):
        wedged = CompilerBehavior(async_wedged_by_compute_data_clauses=True)
        with_data = """
int main(){
  int i, a[5];
  for(i=0;i<5;i++) a[i]=0;
  #pragma acc parallel loop copy(a[0:5]) async(3)
  for(i=0;i<5;i++) a[i]=1;
  return acc_async_test(3);
}
"""
        # wedged: returns the configured sentinel (-1)
        assert run(with_data, wedged).value == -1
        without_data = """
int main(){
  int i, a[5];
  for(i=0;i<5;i++) a[i]=0;
  #pragma acc data copy(a[0:5])
  {
    #pragma acc parallel loop async(3)
    for(i=0;i<5;i++) a[i]=1;
  }
  return 1;
}
"""
        assert run(without_data, wedged).value == 1


class TestDeclare:
    def test_declare_create_function_lifetime(self):
        src = """
int main(){
  int i, t[6], out[6];
  #pragma acc declare create(t[0:6])
  for(i=0;i<6;i++){ out[i]=0; }
  #pragma acc parallel loop present(t[0:6])
  for(i=0;i<6;i++) t[i] = i * 2;
  #pragma acc parallel loop present(t[0:6]) copy(out[0:6])
  for(i=0;i<6;i++) out[i] = t[i] + 1;
  return out[5] == 11;
}
"""
        assert run(src).value == 1

    def test_declare_copy_exit_writeback(self):
        src = """
int g[4];
#pragma acc declare copy(g[0:4])
void step(){
  int j;
  #pragma acc parallel loop present(g[0:4])
  for(j=0;j<4;j++) g[j] += 5;
}
int main(){
  int i;
  for(i=0;i<4;i++) g[i] = i;
  step();
  return (g[0] == 5) && (g[3] == 8);
}
"""
        assert run(src).value == 1


class TestVendorBugBehaviors:
    def test_copyin_as_create(self):
        src = """
int main(){
  int i, a[4], out[4];
  for(i=0;i<4;i++){ a[i]=5; out[i]=0; }
  #pragma acc parallel loop copyin(a[0:4]) copy(out[0:4])
  for(i=0;i<4;i++) out[i] = a[i];
  return out[0] == 5;
}
"""
        assert run(src).value == 1
        assert run(src, CompilerBehavior(copyin_as_create=True)).value == 0

    def test_copyout_not_copied(self):
        src = """
int main(){
  int i, b[4];
  for(i=0;i<4;i++) b[i] = -1;
  #pragma acc parallel loop copyout(b[0:4])
  for(i=0;i<4;i++) b[i] = 1;
  return b[0] == 1;
}
"""
        assert run(src).value == 1
        assert run(src, CompilerBehavior(copyout_not_copied=True)).value == 0

    def test_ignore_loop_directive(self):
        src = """
int main(){
  int i, a[6];
  for(i=0;i<6;i++) a[i]=0;
  #pragma acc parallel num_gangs(3) copy(a[0:6])
  {
    #pragma acc loop
    for(i=0;i<6;i++) a[i]++;
  }
  return a[0];
}
"""
        assert run(src).value == 1
        assert run(src, CompilerBehavior(ignore_loop_directive=True)).value == 3

    def test_ignore_if_clause(self):
        src = """
int main(){
  int t = 5;
  #pragma acc kernels if (0)
  {
    t = acc_on_device(acc_device_not_host);
  }
  return t;
}
"""
        assert run(src).value == 0          # host execution
        assert run(src, CompilerBehavior(ignore_if_clause=True)).value == 1

    def test_eliminate_copy_only_regions(self):
        src = """
int main(){
  int i, b[4], c[4];
  for(i=0;i<4;i++){ b[i]=3; c[i]=0; }
  #pragma acc parallel copy(b[0:4], c[0:4])
  {
    #pragma acc loop
    for(i=0;i<4;i++) c[i] = b[i];
  }
  return c[0];
}
"""
        assert run(src).value == 3
        cray = CompilerBehavior(eliminate_copy_only_regions=True)
        assert run(src, cray).value == 0

    def test_firstprivate_uninitialized(self):
        src = """
int main(){
  int t = 7, out = -1;
  #pragma acc parallel num_gangs(1) firstprivate(t) copy(out)
  { out = t; }
  return out;
}
"""
        assert run(src).value == 7
        assert run(src, CompilerBehavior(firstprivate_uninitialized=True)).value == 0
