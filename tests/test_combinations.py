"""Tests for the feature-combination suite (Section IX future work)."""

import pytest

from repro.accsim.errors import AccRuntimeError
from repro.compiler import Compiler, CompileError, CompilerBehavior
from repro.harness import HarnessConfig, ValidationRunner
from repro.suite import combination_suite
from repro.templates import generate_cross, generate_functional

_SUITE = combination_suite()
_CC = Compiler()


@pytest.mark.parametrize("template", list(_SUITE), ids=lambda t: t.name)
def test_combination_functional_passes(template):
    generated = generate_functional(template)
    result = _CC.compile(generated.source, template.language, template.name).run()
    assert result.value == 1, template.name


@pytest.mark.parametrize(
    "template", [t for t in _SUITE if t.has_cross], ids=lambda t: t.name
)
def test_combination_cross_behaves(template):
    generated = generate_cross(template)
    try:
        result = _CC.compile(
            generated.source, template.language, template.name
        ).run()
        outcome = "pass" if result.value == 1 else "wrong"
    except (CompileError, AccRuntimeError):
        outcome = "wrong"
    if template.crossexpect == "different":
        assert outcome == "wrong", template.name
    else:
        assert outcome == "pass", template.name


class TestCombinationScope:
    def test_corpus_size(self):
        assert len(_SUITE) == 20  # ten designs x two languages

    def test_each_design_names_multiple_features(self):
        """Combination tests exist to exercise feature interactions."""
        for template in _SUITE:
            assert len(template.dependences) >= 2, template.name

    def test_registry_is_separate_from_base_corpus(self):
        from repro.suite import openacc10_suite

        base = {t.name for t in openacc10_suite()}
        combo = {t.name for t in _SUITE}
        assert not base & combo


class TestCombinationsDetectInteractionBugs:
    """The combination slice must catch bugs that only bite when features
    interact — run against representative buggy behaviours."""

    def _run(self, behavior):
        config = HarnessConfig(iterations=1, run_cross=False)
        return ValidationRunner(behavior, config).run_suite(_SUITE)

    def test_async_wedge_breaks_if_async_combo(self):
        behavior = CompilerBehavior(async_wedged_by_compute_data_clauses=True)
        report = self._run(behavior)
        assert "parallel.if" in report.failed_features()  # combo_if_async

    def test_update_ignored_breaks_hostdata_combo(self):
        report = self._run(CompilerBehavior(ignore_update=True))
        failing = set(report.failed_features())
        assert "update.host" in failing      # combo_hostdata_update
        assert "update.device" in failing    # combo_declare_update_device

    def test_broken_add_reduction_breaks_three_combos(self):
        report = self._run(CompilerBehavior(broken_reductions=frozenset({"+"})))
        failing = set(report.failed_features())
        assert "loop.reduction.int_add" in failing
        assert "parallel.firstprivate" in failing
        assert "loop.collapse" in failing

    def test_clean_reference_passes_all(self):
        report = self._run(CompilerBehavior())
        assert report.pass_rate() == 100.0
