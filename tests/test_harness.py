"""Tests for the harness: stats model, runner pipeline, reports."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler import CompilerBehavior
from repro.harness import (
    FailureKind,
    HarnessConfig,
    ValidationRunner,
    accidental_pass_probability,
    certainty,
    cross_fail_probability,
    render_bug_report,
    render_csv,
    render_html,
    render_text,
)
from repro.suite import openacc10_suite
from repro.templates import parse_template
from repro.suite.builders import check, template_text


class TestStats:
    def test_paper_formulas(self):
        # nf = M (every cross run fails) -> full certainty
        assert certainty(3, 3) == 1.0
        # nf = 0 -> no certainty
        assert certainty(0, 3) == 0.0
        assert accidental_pass_probability(0, 3) == 1.0

    def test_partial_certainty(self):
        # p = 1/2, M = 2 -> pa = 0.25, pc = 0.75
        assert cross_fail_probability(1, 2) == 0.5
        assert accidental_pass_probability(1, 2) == 0.25
        assert certainty(1, 2) == 0.75

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cross_fail_probability(1, 0)
        with pytest.raises(ValueError):
            cross_fail_probability(5, 3)

    @given(st.integers(1, 60))
    def test_full_failure_always_certain(self, m):
        assert certainty(m, m) == 1.0

    @given(st.integers(1, 60), st.data())
    def test_certainty_monotone_in_nf(self, m, data):
        nf = data.draw(st.integers(0, m - 1))
        assert certainty(nf, m) <= certainty(nf + 1, m)

    @given(st.integers(0, 30), st.integers(1, 30))
    def test_probability_bounds(self, nf, m):
        if nf > m:
            return
        pc = certainty(nf, m)
        assert 0.0 <= pc <= 1.0


def _template(code: str, **kwargs) -> object:
    args = dict(name="t.c", feature="loop", language="c", code=code)
    args.update(kwargs)
    return parse_template(template_text(**args))


class TestRunnerPipeline:
    def test_pass_with_conclusive_cross(self):
        tpl = _template(
            "int main(){ int i, a[8];\n"
            "for(i=0;i<8;i++) a[i]=0;\n"
            "#pragma acc parallel num_gangs(4) copy(a[0:8])\n"
            "{\n" + check("#pragma acc loop") + "\n"
            "for(i=0;i<8;i++) a[i]++;\n}\n"
            "return a[0] == 1; }"
        )
        result = ValidationRunner(config=HarnessConfig(iterations=3)).run_template(tpl)
        assert result.passed
        assert result.cross_conclusive is True
        assert result.certainty == 1.0

    def test_wrong_value_classified(self):
        tpl = _template("int main(){ return 0; }")
        result = ValidationRunner().run_template(tpl)
        assert not result.passed
        assert result.failure_kind is FailureKind.WRONG_VALUE

    def test_compile_error_classified_and_cross_skipped(self):
        tpl = _template("int main(){ syntax error here }")
        result = ValidationRunner().run_template(tpl)
        assert result.failure_kind is FailureKind.COMPILE_ERROR
        assert result.cross is None

    def test_runtime_crash_classified(self):
        tpl = _template("int main(){ int z = 0; return 1 / z; }")
        result = ValidationRunner().run_template(tpl)
        assert result.failure_kind is FailureKind.RUNTIME_CRASH

    def test_timeout_classified(self):
        tpl = _template("int main(){ int x = 1; while (x) x = 1; return 0; }")
        runner = ValidationRunner(config=HarnessConfig(iterations=1, max_steps=2000))
        result = runner.run_template(tpl)
        assert result.failure_kind is FailureKind.TIMEOUT

    def test_unexpected_inconclusive_cross_flagged(self):
        # removing this "directive" changes nothing -> inconclusive
        tpl = _template(
            "int main(){ int x = 1; " + check("x = 1;") + " return x; }"
        )
        result = ValidationRunner().run_template(tpl)
        assert result.passed
        assert result.cross_inconclusive_unexpectedly

    def test_expected_same_cross_not_flagged(self):
        tpl = _template(
            "int main(){ int x = 1; " + check("x = 1;") + " return x; }",
            crossexpect="same",
        )
        result = ValidationRunner().run_template(tpl)
        assert result.passed
        assert not result.cross_inconclusive_unexpectedly

    def test_cross_disabled_by_config(self):
        tpl = _template(
            "int main(){ int x = 0; " + check("x = 1;") + " return x; }"
        )
        runner = ValidationRunner(config=HarnessConfig(run_cross=False))
        result = runner.run_template(tpl)
        assert result.cross is None and result.certainty == 0.0

    def test_environment_passed_to_runs(self):
        tpl = _template(
            "int main(){ return acc_get_device_type() == acc_device_host; }",
            environment={"ACC_DEVICE_TYPE": "HOST"},
        )
        result = ValidationRunner().run_template(tpl)
        assert result.passed

    def test_suite_selection_by_prefix(self):
        suite = openacc10_suite()
        config = HarnessConfig(iterations=1, run_cross=False,
                               feature_prefixes=["update"], languages=("c",))
        report = ValidationRunner(config=config).run_suite(suite)
        assert report.results
        assert all(r.feature.startswith("update") for r in report.results)

    def test_suite_selection_by_language(self):
        suite = openacc10_suite()
        config = HarnessConfig(iterations=1, run_cross=False,
                               languages=("fortran",),
                               feature_prefixes=["wait"])
        report = ValidationRunner(config=config).run_suite(suite)
        assert report.results
        assert all(r.language == "fortran" for r in report.results)

    def test_report_aggregations(self):
        suite = openacc10_suite()
        config = HarnessConfig(iterations=1, run_cross=False,
                               feature_prefixes=["host_data"])
        buggy = CompilerBehavior(
            name="buggy", version="0",
            unsupported_clauses=frozenset({("host_data", "use_device")}),
        )
        report = ValidationRunner(buggy, config).run_suite(suite)
        assert report.pass_rate() == 0.0
        assert report.failed_features().count("host_data.use_device") == 2
        kinds = report.by_failure_kind()
        assert kinds[FailureKind.COMPILE_ERROR] == 2


class TestReports:
    @pytest.fixture(scope="class")
    def sample_report(self):
        suite = openacc10_suite()
        config = HarnessConfig(iterations=2, feature_prefixes=["loop"],
                               languages=("c",))
        behavior = CompilerBehavior(name="demo", version="1",
                                    broken_reductions=frozenset({"+"}))
        return ValidationRunner(behavior, config).run_suite(suite)

    def test_text_report(self, sample_report):
        text = render_text(sample_report)
        assert "demo 1" in text
        assert "PASS" in text and "FAIL" in text
        assert "%" in text

    def test_csv_report(self, sample_report):
        csv = render_csv(sample_report)
        lines = csv.strip().split("\n")
        assert lines[0].startswith("feature,language,result")
        assert len(lines) == len(sample_report.results) + 1

    def test_html_report(self, sample_report):
        html = render_html(sample_report)
        assert html.startswith("<!DOCTYPE html>")
        assert "demo 1" in html
        assert "<table>" in html

    def test_bug_report_snippets(self, sample_report):
        bug_report = render_bug_report(sample_report)
        assert "Bug report" in bug_report
        # failing reduction tests should include generated code snippets
        assert "reduction" in bug_report
        assert "#pragma acc" in bug_report

    def test_csv_survives_commas_and_quotes_in_fields(self):
        """Regression: string-interpolated CSV silently corrupted the table
        when a feature name or failure detail contained a comma or quote —
        the stdlib writer must quote such fields per RFC 4180."""
        import csv as csv_mod
        import io
        from repro.harness.runner import (
            IterationOutcome, PhaseResult, SuiteRunReport,
            TestResult as _TestResult,
        )
        from repro.templates import TestTemplate as _TestTemplate

        feature = 'data.copy,"tricky", rest'
        detail = 'expected 1, got "0"\nsecond line'
        template = _TestTemplate(name="t", feature=feature, language="c",
                                 code="")
        functional = PhaseResult(
            mode="functional", source="int main(){}",
            iterations=[IterationOutcome(ok=False, error=detail,
                                         kind=FailureKind.WRONG_VALUE)],
        )
        report = SuiteRunReport(
            compiler_label="demo", config=HarnessConfig(iterations=1),
            results=[_TestResult(template=template, functional=functional)],
        )
        text = render_csv(report)
        rows = list(csv_mod.reader(io.StringIO(text)))
        header, row = rows[0], rows[1]
        assert len(rows) == 2
        # every row parses back to exactly the header's column count...
        assert len(row) == len(header)
        # ...and the poisoned fields round-trip verbatim
        assert row[header.index("feature")] == feature
        assert detail.split("\n")[0] in row[header.index("detail")]

    def test_metrics_csv_two_columns_always(self, sample_report):
        import csv as csv_mod
        import io
        from repro.harness import render_metrics_csv

        text = render_metrics_csv(sample_report)
        rows = list(csv_mod.reader(io.StringIO(text)))
        assert rows[0] == ["metric", "value"]
        assert all(len(row) == 2 for row in rows)
