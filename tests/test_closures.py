"""Tests for the closure-compilation backend (:mod:`repro.compiler.closures`)
and the interpreter correctness fixes that shipped with it.

The backend's contract is observable equivalence with the reference tree
walker: same :class:`ExecutionResult` (value, output, steps, device
counters), same error strings, over every template the suite ships.  The
differential below enforces that over the full corpus, and the engine-level
tests assert byte-identical report renderings across backends and execution
policies.
"""

from __future__ import annotations

import threading

import pytest

from repro.accsim.errors import AccRuntimeError, ExecutionTimeout
from repro.accsim.machine import Machine
from repro.compiler import (
    BACKENDS,
    CompileCache,
    Compiler,
    ExecutionLimits,
    Interpreter,
    InterpreterReuseError,
    lower_program,
)
from repro.harness import HarnessConfig, ValidationRunner, render_csv, render_text
from repro.ir.astnodes import For
from repro.suite import openacc10_suite
from repro.templates import generate_cross, generate_functional

#: a program whose result exercises host compute, an acc region (device
#: counters move) and function calls — if any per-run state leaks between
#: run() calls, one of the result fields diverges
_STATEFUL_SRC = """
int scale(int x) { return x * 2 + 1; }
int main() {
  int n = 64;
  int a[64];
  int total = 0;
  #pragma acc parallel loop copy(a[0:64])
  for (int i = 0; i < n; i = i + 1) {
    a[i] = i * i;
  }
  for (int i = 0; i < n; i = i + 1) {
    total = total + a[i];
  }
  return scale(total % 1000);
}
"""


def _compile(source: str, name: str = "t.c"):
    return Compiler().compile(source, "c", name)


# ---------------------------------------------------------------------------
# Interpreter.run() reuse contract
# ---------------------------------------------------------------------------


class TestRunReuse:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_owned_machine_run_twice_is_identical(self, backend):
        compiled = _compile(_STATEFUL_SRC)
        interp = Interpreter(compiled.program, compiled.behavior,
                             backend=backend)
        first = interp.run()
        second = interp.run()
        # the regression: globals/output/device counters leaked across
        # runs, so the second result double-counted bytes_to_device
        assert first == second
        assert second.bytes_to_device == first.bytes_to_device

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_caller_supplied_machine_reuse_raises(self, backend):
        compiled = _compile(_STATEFUL_SRC)
        interp = Interpreter(compiled.program, compiled.behavior,
                             machine=Machine(), backend=backend)
        interp.run()
        with pytest.raises(InterpreterReuseError):
            interp.run()

    def test_reuse_error_is_not_a_simulated_crash(self):
        # InterpreterReuseError is a harness-usage bug, and must never be
        # classified as the simulated program crashing (AccRuntimeError)
        assert not issubclass(InterpreterReuseError, AccRuntimeError)
        assert issubclass(InterpreterReuseError, RuntimeError)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reset_covers_limits_and_output(self, backend):
        compiled = _compile(_STATEFUL_SRC)
        interp = Interpreter(compiled.program, compiled.behavior,
                             backend=backend)
        first = interp.run()
        # a second run under a tighter budget must time out: proof the
        # budget is re-read, not frozen at first-run state
        with pytest.raises(ExecutionTimeout):
            interp.run(limits=ExecutionLimits(max_steps=10))
        # and a third full run recovers the original result exactly
        assert interp.run(limits=ExecutionLimits(max_steps=2_000_000)) == first


# ---------------------------------------------------------------------------
# lazy iteration_values (the huge-trip-count regression)
# ---------------------------------------------------------------------------


class TestLazyIterationValues:
    def test_iteration_values_returns_lazy_range(self):
        compiled = _compile(
            "int main() {"
            "  for (int i = 0; i < 2000000000; i = i + 1) { }"
            "  return 0;"
            "}"
        )
        interp = Interpreter(compiled.program, compiled.behavior)
        loops = [s for fn in compiled.program.functions
                 for s in _walk_stmts(fn.body) if isinstance(s, For)]
        assert loops, "fixture program must contain a for loop"
        values = interp.iteration_values(loops[0], interp.globals)
        # the regression materialised this as list(range(...)) — ~16 GB for
        # a 2e9 trip count; a lazy range is O(1) whatever the bounds
        assert isinstance(values, range)
        assert len(values) == 2_000_000_000

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_huge_trip_count_hits_step_budget_not_allocator(self, backend):
        # 2e9 iterations materialised as a list is ~16 GB; lazily it is an
        # O(1) range and the step budget stops the loop almost immediately
        source = """
        int main() {
          int acc = 0;
          #pragma acc parallel loop
          for (int i = 0; i < 2000000000; i = i + 1) { acc = acc + 1; }
          return acc;
        }
        """
        compiled = _compile(source)
        with pytest.raises(ExecutionTimeout):
            compiled.run(limits=ExecutionLimits(max_steps=5_000),
                         backend=backend)


def _walk_stmts(block):
    for stmt in getattr(block, "stmts", []):
        yield stmt
        yield from _walk_stmts(stmt)  # nested Block statements
        body = getattr(stmt, "body", None)
        if body is not None:
            yield from _walk_stmts(body)
        then = getattr(stmt, "then", None)
        if then is not None:
            yield from _walk_stmts(then)
        loop = getattr(stmt, "loop", None)
        if loop is not None:
            yield loop
            yield from _walk_stmts(loop.body)


# ---------------------------------------------------------------------------
# CompileCache.stats() (the torn-read regression)
# ---------------------------------------------------------------------------


class TestCacheStats:
    def test_stats_snapshot_is_consistent_under_contention(self):
        cache = CompileCache(maxsize=64)
        compiler = Compiler()
        sources = [f"int main() {{ return {i}; }}" for i in range(8)]
        per_thread = 40
        n_threads = 4
        stop = threading.Event()
        bad = []

        def reader():
            # the regression: hits/misses read as two unlocked loads could
            # tear mid-update; stats() snapshots both under the cache lock,
            # so lookups can never exceed the number of completed calls
            while not stop.is_set():
                snap = cache.stats()
                if snap.hits < 0 or snap.misses < 0 or \
                        snap.lookups > n_threads * per_thread:
                    bad.append(snap)

        def worker(k):
            for i in range(per_thread):
                source = sources[(i + k) % len(sources)]
                cache.get_or_compile(compiler, source, "c", "t.c")

        watcher = threading.Thread(target=reader)
        watcher.start()
        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        watcher.join()

        assert not bad
        final = cache.stats()
        assert final.hits + final.misses == n_threads * per_thread
        assert final.misses == len(sources)
        assert final.entries == len(sources)
        # the legacy attributes stay readable and agree with the snapshot
        assert (cache.hits, cache.misses) == (final.hits, final.misses)

    def test_hit_rate_delegates_to_snapshot(self):
        cache = CompileCache()
        compiler = Compiler()
        cache.get_or_compile(compiler, "int main() { return 0; }", "c", "t.c")
        cache.get_or_compile(compiler, "int main() { return 0; }", "c", "t.c")
        stats = cache.stats()
        assert stats.lookups == 2 and stats.hits == 1
        assert cache.hit_rate == pytest.approx(0.5)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_empty_cache_stats(self):
        stats = CompileCache().stats()
        assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)
        assert stats.hit_rate == 0.0


# ---------------------------------------------------------------------------
# cross-backend differential over the full shipped corpus
# ---------------------------------------------------------------------------


class TestCrossBackendCorpus:
    def test_every_template_runs_identically(self, suite10,
                                             reference_compiler):
        """Both backends must produce the same ExecutionResult — or raise
        the same error with the same message — for every generated source
        (functional and cross) of every template in the corpus."""
        checked = 0
        for template in suite10.select():
            generated = [generate_functional(template)]
            if template.has_cross:
                generated.append(generate_cross(template))
            for gen in generated:
                try:
                    compiled = reference_compiler.compile(
                        gen.source, template.language, template.name)
                except Exception:
                    continue  # compile errors never reach a backend
                env = template.environment or None
                outcomes = {}
                for backend in BACKENDS:
                    try:
                        outcomes[backend] = compiled.run(
                            env_vars=env, rng_seed=20140519, backend=backend)
                    except Exception as exc:  # noqa: BLE001 - differential
                        outcomes[backend] = (type(exc).__name__, str(exc))
                assert outcomes["closures"] == outcomes["tree"], (
                    f"backend divergence on {template.name} "
                    f"({template.language}, {gen.mode})"
                )
                checked += 1
        # the corpus ships hundreds of programs; a collapsed selection
        # would make this test pass vacuously
        assert checked > 300

    def test_lowered_program_is_shared_and_pure(self):
        compiled = _compile(_STATEFUL_SRC)
        lowered = compiled.lowered()
        assert compiled.lowered() is lowered  # cached on the instance
        a = Interpreter(compiled.program, compiled.behavior,
                        backend="closures", lowered=lowered)
        b = Interpreter(compiled.program, compiled.behavior,
                        backend="closures", lowered=lowered)
        assert a.run() == b.run()  # shared lowering, independent state

    def test_lowering_survives_pickling_boundary(self):
        import pickle

        compiled = _compile(_STATEFUL_SRC)
        compiled.lowered()
        clone = pickle.loads(pickle.dumps(compiled))
        # closures are not picklable: the clone must drop the lowering and
        # rebuild it on demand, not fail
        assert clone._lowered is None
        assert clone.run(backend="closures") == compiled.run(backend="tree")

    def test_unknown_backend_rejected(self):
        compiled = _compile(_STATEFUL_SRC)
        with pytest.raises(ValueError, match="backend"):
            Interpreter(compiled.program, compiled.behavior, backend="jit")
        with pytest.raises(ValueError, match="backend"):
            HarnessConfig(backend="jit")


# ---------------------------------------------------------------------------
# engine-level byte identity across backends and policies
# ---------------------------------------------------------------------------


def _engine_run(suite, **config_kwargs):
    defaults = dict(iterations=1, languages=("c", "fortran"))
    defaults.update(config_kwargs)
    runner = ValidationRunner(config=HarnessConfig(**defaults))
    return runner.run_suite(suite)


class TestReportByteIdentity:
    @pytest.fixture(scope="class")
    def tree_report(self, suite10):
        return _engine_run(suite10, backend="tree")

    def test_serial_full_corpus(self, suite10, tree_report):
        report = _engine_run(suite10, backend="closures")
        assert render_csv(report) == render_csv(tree_report)
        assert render_text(report) == render_text(tree_report)

    @pytest.mark.parametrize("policy,workers",
                             [("thread", 4), ("process", 2)])
    def test_pooled_closures_match_serial_tree(self, suite10, policy,
                                               workers):
        prefixes = ["parallel", "loop", "data"]
        serial = _engine_run(suite10, backend="tree",
                             feature_prefixes=prefixes)
        pooled = _engine_run(suite10, backend="closures", policy=policy,
                             workers=workers, feature_prefixes=prefixes)
        assert render_csv(pooled) == render_csv(serial)
        assert render_text(pooled) == render_text(serial)
