"""Tests for the specification model (feature tree, devices, reductions,
versions)."""

import pytest
from hypothesis import given, strategies as st

from repro.spec import (
    ACC_10,
    ACC_20,
    DeviceType,
    Feature,
    FeatureKind,
    FeatureRegistry,
    OPENACC_10,
    OPENACC_20_ADDITIONS,
    REDUCTION_OPS,
    SpecVersion,
    reduction_combine,
    reduction_identity,
)
from repro.spec.devices import (
    ACC_DEVICE_DEFAULT,
    ACC_DEVICE_HOST,
    ACC_DEVICE_NONE,
    ACC_DEVICE_NOT_HOST,
    ACC_DEVICE_NVIDIA,
    device_type_by_name,
)
from repro.spec.features import OPENACC_ALL
from repro.spec.reductions import canonical_reduction


class TestSpecVersion:
    def test_ordering(self):
        assert ACC_10 < ACC_20
        assert ACC_10 <= ACC_10
        assert not ACC_20 < ACC_10

    def test_parse_roundtrip(self):
        assert SpecVersion.parse("1.0") == ACC_10
        assert str(ACC_20) == "2.0"


class TestFeatureRegistry:
    def test_counts_are_plausible(self):
        # 1.0 tree: directives + clauses + 14 routines + 2 env vars
        assert len(OPENACC_10) > 90
        assert len(OPENACC_20_ADDITIONS) >= 4

    def test_directive_features_exist(self):
        for fid in ("parallel", "kernels", "data", "host_data", "loop",
                    "cache", "declare", "update", "wait",
                    "parallel loop", "kernels loop"):
            assert fid in OPENACC_10
            assert OPENACC_10[fid].kind is FeatureKind.DIRECTIVE

    def test_clause_parentage(self):
        feature = OPENACC_10["parallel.num_gangs"]
        assert feature.parent == "parallel"
        assert feature.kind is FeatureKind.CLAUSE
        assert feature.directive == "parallel"

    def test_reduction_leaves(self):
        for leaf in ("int_add", "int_logor", "float_max", "double_min"):
            assert f"loop.reduction.{leaf}" in OPENACC_10

    def test_runtime_routines_complete(self):
        routines = [f for f in OPENACC_10 if f.fid.startswith("runtime.")]
        assert len(routines) == 14

    def test_env_vars(self):
        assert "env.ACC_DEVICE_TYPE" in OPENACC_10
        assert "env.ACC_DEVICE_NUM" in OPENACC_10

    def test_20_additions_not_in_10(self):
        for f in OPENACC_20_ADDITIONS:
            assert f.fid not in OPENACC_10

    def test_subtree(self):
        subtree = OPENACC_10.subtree("host_data")
        assert [f.fid for f in subtree] == ["host_data", "host_data.use_device"]

    def test_children(self):
        kids = {f.leaf for f in OPENACC_10.children("update")}
        assert kids == {"host", "device", "if", "async"}

    def test_duplicate_rejected(self):
        registry = FeatureRegistry()
        registry.add(Feature("x", FeatureKind.DIRECTIVE))
        with pytest.raises(ValueError):
            registry.add(Feature("x", FeatureKind.DIRECTIVE))

    def test_validate_tree_catches_orphans(self):
        registry = FeatureRegistry()
        registry.add(Feature("a.b", FeatureKind.CLAUSE, parent="a"))
        with pytest.raises(ValueError):
            registry.validate_tree()

    def test_at_version_monotone(self):
        assert len(OPENACC_ALL.at_version(ACC_10)) < len(OPENACC_ALL.at_version(ACC_20))


class TestDeviceTypes:
    def test_not_host_matches_accelerators(self):
        assert ACC_DEVICE_NVIDIA.matches(ACC_DEVICE_NOT_HOST)
        assert not ACC_DEVICE_HOST.matches(ACC_DEVICE_NOT_HOST)

    def test_default_matches_everything(self):
        assert ACC_DEVICE_NVIDIA.matches(ACC_DEVICE_DEFAULT)
        assert ACC_DEVICE_HOST.matches(ACC_DEVICE_DEFAULT)

    def test_host_request(self):
        assert ACC_DEVICE_HOST.matches(ACC_DEVICE_HOST)
        assert not ACC_DEVICE_NVIDIA.matches(ACC_DEVICE_HOST)

    def test_none_only_matches_none(self):
        assert ACC_DEVICE_NONE.matches(ACC_DEVICE_NONE)
        assert not ACC_DEVICE_NVIDIA.matches(ACC_DEVICE_NONE)

    def test_lookup_by_name(self):
        assert device_type_by_name("acc_device_nvidia") is ACC_DEVICE_NVIDIA
        with pytest.raises(KeyError):
            device_type_by_name("acc_device_quantum")

    def test_vendor_extensions_are_not_host(self):
        for name in ("acc_device_cuda", "acc_device_opencl",
                     "acc_device_xeonphi"):
            assert device_type_by_name(name).not_host

    def test_vendor_aliases_interchangeable(self):
        """Section V-C: CAPS said acc_device_cuda where PGI said
        acc_device_nvidia — same hardware class, so requests match."""
        cuda = device_type_by_name("acc_device_cuda")
        nvidia = device_type_by_name("acc_device_nvidia")
        assert cuda.matches(nvidia) and nvidia.matches(cuda)
        radeon = device_type_by_name("acc_device_radeon")
        assert not radeon.matches(nvidia)


class TestReductions:
    def test_identities(self):
        assert reduction_identity("+", "int") == 0
        assert reduction_identity("*", "int") == 1
        assert reduction_identity("max", "float") == float("-inf")
        assert reduction_identity("&&", "int") == 1
        assert reduction_identity("&", "int") == -1

    def test_combine(self):
        assert reduction_combine("+", 3, 4) == 7
        assert reduction_combine("max", 3, 9) == 9
        assert reduction_combine("&&", 1, 0) == 0
        assert reduction_combine("|", 4, 1) == 5

    def test_fortran_aliases(self):
        assert canonical_reduction(".and.") == "&&"
        assert canonical_reduction("iand") == "&"
        assert canonical_reduction("IEOR") == "^"

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    def test_add_reduction_matches_sum(self, values):
        acc = reduction_identity("+", "int")
        for v in values:
            acc = reduction_combine("+", acc, v)
        assert acc == sum(values)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    def test_max_reduction_matches_max(self, values):
        acc = reduction_identity("max", "int")
        for v in values:
            acc = reduction_combine("max", acc, v)
        assert acc == max(values)

    @given(st.lists(st.integers(0, 2**30), min_size=1, max_size=50),
           st.sampled_from(["&", "|", "^"]))
    def test_bitwise_reductions_associative(self, values, op):
        """Identity-seeded left fold equals pairwise tree combination."""
        left = reduction_identity(op, "int")
        for v in values:
            left = reduction_combine(op, left, v)
        # tree-shaped combination
        work = list(values)
        while len(work) > 1:
            nxt = []
            for i in range(0, len(work) - 1, 2):
                nxt.append(reduction_combine(op, work[i], work[i + 1]))
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        assert reduction_combine(op, reduction_identity(op, "int"), work[0]) == left

    def test_floating_only_ops_flagged(self):
        assert not REDUCTION_OPS["&"].floating_ok
        assert REDUCTION_OPS["+"].floating_ok
