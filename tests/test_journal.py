"""Tests for the crash-safe campaign journal (``repro.journal``).

Layers under test, bottom up:

* the WAL itself — checksummed records, the torn-tail rule, campaign-key
  binding, resume generations;
* the codec — canonical campaign keys (execution knobs excluded), full
  result round-trips;
* the runner — replayed units are never re-run, reports come out
  byte-identical;
* the CLI — crash (injected torn write) and resume under every execution
  policy, ``journal inspect``, mismatch refusal;
* a real SIGKILL mid-campaign in a subprocess, resumed to a
  byte-identical report.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.compiler import CompilerBehavior
from repro.harness import (
    HarnessConfig,
    ValidationRunner,
    render_csv,
    render_text,
    reset_drain,
    request_drain,
)
from repro.journal import (
    JOURNAL_FORMAT,
    JournalCorruptError,
    JournalMismatchError,
    JournalWriter,
    canonicalize,
    decode_result,
    encode_result,
    fsck_journal,
    read_journal,
    record_line,
    render_fsck,
    scan_journal_file,
    titan_campaign_key,
    unit_keys,
    validate_campaign_key,
)
from repro.suite import openacc10_suite


@pytest.fixture(autouse=True)
def _clean_drain():
    reset_drain()
    yield
    reset_drain()


CAMPAIGN = {"format": JOURNAL_FORMAT, "command": "validate", "suite": "1.0"}


def _small_config(**overrides) -> HarnessConfig:
    defaults = dict(iterations=2, languages=("c",),
                    feature_prefixes=["parallel.if", "update"])
    defaults.update(overrides)
    return HarnessConfig(**defaults)


# ---------------------------------------------------------------------------
# WAL: records, torn tails, campaign binding
# ---------------------------------------------------------------------------


class TestWal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter.create(path, CAMPAIGN)
        writer.append("a:c", {"x": 1})
        writer.append("b:c", {"y": [1, 2]})
        writer.close()
        loaded = read_journal(path)
        assert loaded.campaign == CAMPAIGN
        assert loaded.records == {"a:c": {"x": 1}, "b:c": {"y": [1, 2]}}
        assert loaded.resumes == 0
        assert loaded.torn_bytes == 0

    def test_last_record_wins_for_duplicate_unit(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter.create(path, CAMPAIGN)
        writer.append("a:c", {"x": 1})
        writer.append("a:c", {"x": 2})
        writer.close()
        assert read_journal(path).records == {"a:c": {"x": 2}}

    def test_torn_tail_tolerated_and_truncated_on_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter.create(path, CAMPAIGN)
        writer.append("a:c", {"x": 1})
        writer.close()
        line = record_line({"type": "unit", "unit": "b:c", "payload": {}})
        with open(path, "ab") as handle:
            handle.write(line[: len(line) // 2])  # the crash artifact
        loaded = read_journal(path)
        assert loaded.records == {"a:c": {"x": 1}}
        assert loaded.torn_bytes == len(line) // 2
        resumed = JournalWriter.resume(path, CAMPAIGN)
        resumed.append("b:c", {"x": 2})
        resumed.close()
        healed = read_journal(path)
        assert healed.torn_bytes == 0
        assert healed.records == {"a:c": {"x": 1}, "b:c": {"x": 2}}
        assert healed.resumes == 1 and healed.generation == 1

    def test_corruption_mid_file_is_refused(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter.create(path, CAMPAIGN)
        writer.append("a:c", {"x": 1})
        writer.append("b:c", {"x": 2})
        writer.close()
        with open(path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"x"', b'"y"')  # tamper, keep checksum
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(JournalCorruptError, match="corruption"):
            read_journal(path)
        with pytest.raises(JournalCorruptError):
            JournalWriter.resume(path, CAMPAIGN)

    def test_missing_or_torn_header_is_refused(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        with pytest.raises(JournalCorruptError, match="empty"):
            read_journal(str(empty))
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(record_line(
            {"type": "header", "format": JOURNAL_FORMAT, "campaign": {}}
        )[:10])
        with pytest.raises(JournalCorruptError, match="header"):
            read_journal(str(torn))

    def test_wrong_format_tag_is_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(record_line(
            {"type": "header", "format": "other/v9", "campaign": {}}))
        with pytest.raises(JournalCorruptError, match="header"):
            read_journal(str(path))

    def test_resume_refuses_mismatched_campaign(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        JournalWriter.create(path, CAMPAIGN).close()
        other = dict(CAMPAIGN, suite="combinations")
        with pytest.raises(JournalMismatchError, match="suite"):
            JournalWriter.resume(path, other)

    def test_resume_generations_accumulate(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        JournalWriter.create(path, CAMPAIGN).close()
        for expected in (1, 2, 3):
            writer = JournalWriter.resume(path, CAMPAIGN)
            assert writer.generation == expected
            writer.close()


# ---------------------------------------------------------------------------
# codec: campaign keys and result round-trips
# ---------------------------------------------------------------------------


class TestCodec:
    def test_canonicalize_json_safe(self):
        value = canonicalize({"s": frozenset({"b", "a"}), "t": (1, 2)})
        assert value == {"s": ["a", "b"], "t": [1, 2]}

    def test_campaign_key_ignores_execution_knobs(self):
        behavior = CompilerBehavior()
        serial = validate_campaign_key(
            "1.0", behavior, _small_config(policy="serial", workers=1))
        process = validate_campaign_key(
            "1.0", behavior, _small_config(policy="process", workers=8,
                                           compile_cache=False))
        # the engine guarantees byte-identical reports across policies, so
        # a resume may switch policy — the key must not pin it
        assert serial == process

    def test_campaign_key_pins_what_changes_results(self):
        behavior = CompilerBehavior()
        base = validate_campaign_key("1.0", behavior, _small_config())
        assert base != validate_campaign_key(
            "1.0", behavior, _small_config(iterations=5))
        assert base != validate_campaign_key(
            "1.0", CompilerBehavior(name="demo", version="9",
                                    broken_reductions=frozenset({"+"})),
            _small_config())
        assert base != validate_campaign_key("combinations", behavior,
                                             _small_config())

    def test_titan_campaign_key_pins_cluster_shape(self):
        config = HarnessConfig(iterations=1, run_cross=False,
                               languages=("c",))
        base = titan_campaign_key(config, nodes=8, degraded=0.25,
                                  seed=2012, sample=4, recheck=1)
        assert base != titan_campaign_key(config, nodes=16, degraded=0.25,
                                          seed=2012, sample=4, recheck=1)
        assert base != titan_campaign_key(config, nodes=8, degraded=0.25,
                                          seed=7, sample=4, recheck=1)

    def test_result_roundtrip_preserves_report_bytes(self):
        suite = openacc10_suite()
        behavior = CompilerBehavior(name="demo", version="1",
                                    broken_reductions=frozenset({"+"}))
        config = _small_config(
            feature_prefixes=["parallel.if", "loop.reduction"])
        runner = ValidationRunner(behavior, config)
        report = runner.run_suite(suite)
        templates = [r.template for r in report.results]
        decoded = [
            decode_result(encode_result(r), t)
            for r, t in zip(report.results, templates)
        ]
        clone = type(report)(compiler_label=report.compiler_label,
                             config=config, results=decoded)
        assert render_text(clone) == render_text(report)
        assert render_csv(clone) == render_csv(report)

    def test_unit_keys_disambiguate_duplicates(self):
        suite = openacc10_suite()
        templates = list(suite.select(languages=("c",),
                                      prefixes=["parallel.if"]))
        keys = unit_keys(templates + templates)
        assert len(keys) == len(set(keys))


# ---------------------------------------------------------------------------
# runner: replay means *never re-run*
# ---------------------------------------------------------------------------


class TestRunnerResume:
    def test_full_journal_replays_without_running(self, tmp_path, monkeypatch):
        suite = openacc10_suite()
        behavior = CompilerBehavior()
        config = _small_config()
        campaign = validate_campaign_key("1.0", behavior, config)
        path = str(tmp_path / "j.jsonl")

        journal = JournalWriter.create(path, campaign)
        first = ValidationRunner(behavior, config).run_suite(
            suite, journal=journal)
        journal.close()

        calls = []
        real = ValidationRunner.run_template

        def counting(self, template):
            calls.append(template.name)
            return real(self, template)

        monkeypatch.setattr(ValidationRunner, "run_template", counting)
        journal = JournalWriter.resume(path, campaign)
        second = ValidationRunner(behavior, config).run_suite(
            suite, journal=journal)
        journal.close()
        assert calls == []  # every unit replayed, none re-run
        assert render_text(second) == render_text(first)
        assert render_csv(second) == render_csv(first)

    def test_partial_journal_runs_only_missing_units(self, tmp_path,
                                                     monkeypatch):
        suite = openacc10_suite()
        behavior = CompilerBehavior()
        config = _small_config()
        campaign = validate_campaign_key("1.0", behavior, config)
        path = str(tmp_path / "j.jsonl")

        journal = JournalWriter.create(path, campaign)
        baseline = ValidationRunner(behavior, config).run_suite(
            suite, journal=journal)
        journal.close()
        total = len(baseline.results)
        assert total >= 4

        # rebuild a journal holding only the first half of the units
        templates = [r.template for r in baseline.results]
        keys = unit_keys(templates)
        half = total // 2
        partial_path = str(tmp_path / "partial.jsonl")
        partial = JournalWriter.create(partial_path, campaign)
        for key, result in list(zip(keys, baseline.results))[:half]:
            partial.append(key, encode_result(result))
        partial.close()

        calls = []
        real = ValidationRunner.run_template

        def counting(self, template):
            calls.append(template.name)
            return real(self, template)

        monkeypatch.setattr(ValidationRunner, "run_template", counting)
        journal = JournalWriter.resume(partial_path, campaign)
        resumed = ValidationRunner(behavior, config).run_suite(
            suite, journal=journal)
        journal.close()
        assert len(calls) == total - half  # exactly the missing units ran
        assert render_text(resumed) == render_text(baseline)
        # and the journal is now complete: a further resume runs nothing
        assert len(read_journal(partial_path).records) == total

    def test_drain_keeps_journal_consistent(self, tmp_path):
        """A drain request mid-campaign stops dispatch after the unit in
        flight; everything journaled so far replays on resume."""
        suite = openacc10_suite()
        behavior = CompilerBehavior()
        config = _small_config()
        campaign = validate_campaign_key("1.0", behavior, config)
        path = str(tmp_path / "j.jsonl")

        journal = JournalWriter.create(path, campaign)
        real_append = journal.append

        def draining_append(unit, payload):
            real_append(unit, payload)
            if len(journal.records) >= 2:
                request_drain()

        journal.append = draining_append
        from repro.harness import CampaignInterrupted

        with pytest.raises(CampaignInterrupted):
            ValidationRunner(behavior, config).run_suite(
                suite, journal=journal)
        journal.close()
        reset_drain()

        loaded = read_journal(path)
        assert len(loaded.records) == 2
        assert loaded.torn_bytes == 0  # a drain is a *clean* stop

        journal = JournalWriter.resume(path, campaign)
        resumed = ValidationRunner(behavior, config).run_suite(
            suite, journal=journal)
        journal.close()
        fresh = ValidationRunner(behavior, config).run_suite(suite)
        assert render_text(resumed) == render_text(fresh)


# ---------------------------------------------------------------------------
# CLI: crash + resume under every policy, inspect, mismatch
# ---------------------------------------------------------------------------


def _validate_args(tmp_path, policy="serial", **extra):
    args = ["validate", "--features", "parallel.if", "update",
            "--language", "c", "--iterations", "2",
            "--policy", policy]
    if policy != "serial":
        args += ["--workers", "2"]
    for flag, value in extra.items():
        args += [f"--{flag.replace('_', '-')}", str(value)]
    return args


class TestCliResume:
    @pytest.mark.parametrize("policy", ["serial", "thread", "process"])
    def test_torn_write_crash_then_resume_byte_identical(
            self, tmp_path, policy, capsys):
        reference = str(tmp_path / "reference.txt")
        assert main(_validate_args(tmp_path, policy,
                                   output=reference)) == 0

        journal = str(tmp_path / "j.jsonl")
        crashed = str(tmp_path / "crashed.txt")
        code = main(_validate_args(
            tmp_path, policy, output=crashed, journal=journal,
            inject_faults="journal=1.0,seed=11"))
        assert code == 3  # interrupted but resumable
        assert "resume with" in capsys.readouterr().err
        assert not os.path.exists(crashed)  # no half-written report

        resumed = str(tmp_path / "resumed.txt")
        code = main(_validate_args(
            tmp_path, policy, output=resumed, resume=journal,
            inject_faults="journal=1.0,seed=11"))
        assert code == 0
        with open(reference) as a, open(resumed) as b:
            assert a.read() == b.read()

    def test_resume_may_switch_policy(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        serial_out = str(tmp_path / "serial.txt")
        assert main(_validate_args(tmp_path, "serial", output=serial_out,
                                   journal=journal)) == 0
        process_out = str(tmp_path / "process.txt")
        assert main(_validate_args(tmp_path, "process", output=process_out,
                                   resume=journal)) == 0
        with open(serial_out) as a, open(process_out) as b:
            assert a.read() == b.read()

    def test_mismatched_resume_exits_nonzero(self, tmp_path, capsys):
        journal = str(tmp_path / "j.jsonl")
        assert main(_validate_args(tmp_path, journal=journal)) == 0
        capsys.readouterr()
        args = ["validate", "--features", "data", "--language", "c",
                "--iterations", "2", "--resume", journal]
        assert main(args) == 1
        err = capsys.readouterr().err
        assert "different campaign" in err

    def test_corrupt_resume_exits_nonzero(self, tmp_path, capsys):
        journal = str(tmp_path / "j.jsonl")
        assert main(_validate_args(tmp_path, journal=journal)) == 0
        with open(journal, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        lines[1] = b'{"tampered": true}\n'
        with open(journal, "wb") as handle:
            handle.writelines(lines)
        capsys.readouterr()
        assert main(_validate_args(tmp_path, resume=journal)) == 1
        assert "journal error" in capsys.readouterr().err

    def test_journal_and_resume_are_mutually_exclusive(self, tmp_path,
                                                       capsys):
        with pytest.raises(SystemExit):
            main(_validate_args(tmp_path, journal="a.jsonl",
                                resume="b.jsonl"))

    def test_journal_inspect(self, tmp_path, capsys):
        journal = str(tmp_path / "j.jsonl")
        assert main(_validate_args(tmp_path, journal=journal)) == 0
        capsys.readouterr()
        assert main(["journal", "inspect", journal, "--units"]) == 0
        out = capsys.readouterr().out
        assert JOURNAL_FORMAT in out
        assert "validate" in out
        assert "clean shutdown" in out
        assert "parallel.if:c" in out

    def test_journal_inspect_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not a journal\n")
        assert main(["journal", "inspect", str(path)]) == 1
        assert "journal error" in capsys.readouterr().err

    def test_journal_fsck_cli(self, tmp_path, capsys):
        journal = str(tmp_path / "j.jsonl")
        assert main(_validate_args(tmp_path, journal=journal)) == 0
        capsys.readouterr()
        # clean: exit 0, verdict on stdout, salvageable units listed
        assert main(["journal", "fsck", journal, "--units"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "parallel.if:c" in out
        # torn tail: still exit 0 (resume truncates it)
        with open(journal, "ab") as handle:
            handle.write(b"half a record")
        assert main(["journal", "fsck", journal]) == 0
        assert "salvageable" in capsys.readouterr().out
        # mid-file corruption: exit 1, named verdict
        with open(journal, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        lines[1] = b'{"tampered": true}\n'
        with open(journal, "wb") as handle:
            handle.writelines(lines)
        assert main(["journal", "fsck", journal]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_titan_crash_then_resume_byte_identical(self, tmp_path, capsys):
        base_args = ["titan", "--nodes", "6", "--sample", "3"]
        assert main(base_args) == 0
        reference = capsys.readouterr().out

        journal = str(tmp_path / "tj.jsonl")
        code = main(base_args + ["--journal", journal,
                                 "--inject-faults", "journal=1.0,seed=5"])
        assert code == 3
        capsys.readouterr()
        code = main(base_args + ["--resume", journal,
                                 "--inject-faults", "journal=1.0,seed=5"])
        assert code == 0
        assert capsys.readouterr().out == reference


# ---------------------------------------------------------------------------
# the real thing: SIGKILL mid-campaign, resume, byte-identical report
# ---------------------------------------------------------------------------


class TestSigkillResume:
    def test_sigkill_then_resume_byte_identical(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        journal = str(tmp_path / "j.jsonl")
        reference = str(tmp_path / "reference.txt")
        resumed = str(tmp_path / "resumed.txt")
        base = [sys.executable, "-m", "repro", "validate",
                "--iterations", "3", "--language", "c"]

        assert subprocess.run(
            base + ["--output", reference], env=env,
            stdout=subprocess.DEVNULL).returncode == 0

        victim = subprocess.Popen(
            base + ["--journal", journal, "--output",
                    str(tmp_path / "never.txt")],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # wait until some units are durably journaled, then SIGKILL
            deadline = time.time() + 60
            while time.time() < deadline:
                try:
                    if len(read_journal(journal).records) >= 3:
                        break
                except (OSError, JournalCorruptError):
                    pass
                time.sleep(0.02)
            else:
                pytest.fail("campaign never journaled 3 units")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
        assert victim.returncode == -signal.SIGKILL

        loaded = read_journal(journal)  # tolerates whatever the kill left
        already = len(loaded.records)
        assert already >= 3

        proc = subprocess.run(
            base + ["--resume", journal, "--output", resumed], env=env,
            stdout=subprocess.DEVNULL)
        assert proc.returncode == 0
        with open(reference) as a, open(resumed) as b:
            assert a.read() == b.read()
        healed = read_journal(journal)
        assert healed.resumes == 1
        assert healed.torn_bytes == 0
        assert len(healed.records) >= already  # nothing was thrown away


# ---------------------------------------------------------------------------
# fsck: the diagnostic counterpart of the strict loader
# ---------------------------------------------------------------------------


class TestFsck:
    def _journal(self, tmp_path, units=("a:c", "b:c")):
        path = str(tmp_path / "c.journal")
        writer = JournalWriter.create(path, CAMPAIGN)
        for unit in units:
            writer.append(unit, {"unit": unit})
        writer.close()
        return path

    def test_clean_journal_is_clean(self, tmp_path):
        path = self._journal(tmp_path)
        report = fsck_journal(path)
        assert report.clean and report.resumable
        assert set(report.salvageable_units()) == {"a:c", "b:c"}
        assert "clean" in render_fsck(report)

    def test_torn_tail_is_salvageable_not_clean(self, tmp_path):
        path = self._journal(tmp_path)
        line = record_line({"type": "unit", "unit": "x:c", "payload": {}})
        with open(path, "ab") as handle:
            handle.write(line[: len(line) // 2])
        report = fsck_journal(path)
        assert not report.clean and report.resumable
        scan = report.files[0]
        assert scan.status == "torn"
        assert scan.bad_bytes == len(line) // 2
        assert "torn tail" in scan.detail
        assert set(report.salvageable_units()) == {"a:c", "b:c"}
        assert "salvageable" in render_fsck(report)
        # the verdict matches what resume actually does
        JournalWriter.resume(path, CAMPAIGN).close()
        assert fsck_journal(path).resumable

    def test_mid_file_corruption_reported_with_intact_prefix(self, tmp_path):
        path = self._journal(tmp_path, units=("a:c", "b:c", "c:c"))
        with open(path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        lines[2] = lines[2].replace(b'"b:c"', b'"B:C"')  # breaks checksum
        with open(path, "wb") as handle:
            handle.writelines(lines)
        report = fsck_journal(path)
        assert not report.resumable
        scan = report.files[0]
        assert scan.status == "corrupt"
        assert scan.first_bad_line == 3
        assert "corruption" in scan.detail
        # the intact prefix before the bad line is still counted
        assert set(scan.records) == {"a:c"}
        assert "CORRUPT" in render_fsck(report)
        with pytest.raises(JournalCorruptError):
            read_journal(path)

    def test_missing_and_headerless_files(self, tmp_path):
        missing = fsck_journal(str(tmp_path / "nope.journal"))
        assert not missing.resumable
        assert missing.files[0].status == "missing"
        empty = tmp_path / "empty.journal"
        empty.write_bytes(b"")
        scan = scan_journal_file(str(empty))
        assert scan.status == "corrupt" and "empty" in scan.detail

    def test_cross_segment_campaign_mismatch_flagged(self, tmp_path):
        from repro.sched.shards import segment_path

        path = self._journal(tmp_path)
        other = dict(CAMPAIGN, suite="combinations")
        stray = JournalWriter.create(segment_path(path, 0), other)
        stray.append("z:c", {"unit": "z:c"})
        stray.close()
        report = fsck_journal(path)
        assert not report.resumable
        mismatched = [f for f in report.files if not f.campaign_matches]
        assert len(mismatched) == 1
        assert mismatched[0].path == segment_path(path, 0)
        assert "campaign key differs" in mismatched[0].detail
        # the mismatched segment's units are not salvage candidates
        assert set(report.salvageable_units()) == {"a:c", "b:c"}
