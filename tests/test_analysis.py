"""Tests for the analysis layer (pass-rate sweeps, bug counting)."""

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    run_vendor_version,
    table1_counts,
    vendor_pass_rates,
)
from repro.compiler.vendors import vendor_version
from repro.harness import HarnessConfig


class TestTable1:
    def test_transcription_shape(self):
        assert set(PAPER_TABLE1) == {"caps", "pgi", "cray"}
        for versions in PAPER_TABLE1.values():
            assert len(versions) == 8

    def test_rows_expose_paper_comparison(self):
        rows = table1_counts("cray")
        assert all(r.matches_paper for r in rows)
        assert rows[0].paper_counts == (16, 6)


class TestPassRateSweeps:
    def test_single_point(self, suite10):
        vv = vendor_version("caps", "3.3.4")
        point = run_vendor_version(
            vv, "c", suite10, HarnessConfig(iterations=1, run_cross=False)
        )
        assert point.pass_rate == 100.0
        assert point.tests == len(suite10.for_language("c"))
        assert point.failures == 0

    def test_failures_complement_pass_rate(self, suite10):
        vv = vendor_version("cray", "8.1.2")
        point = run_vendor_version(
            vv, "c", suite10, HarnessConfig(iterations=1, run_cross=False)
        )
        expected_rate = 100.0 * (point.tests - point.failures) / point.tests
        assert point.pass_rate == pytest.approx(expected_rate)
        assert point.failures >= vv.bug_count("c") - 2  # latent bugs allowed

    def test_vendor_sweep_structure(self, suite10):
        rates = vendor_pass_rates(
            "cray", suite10,
            HarnessConfig(iterations=1, run_cross=False),
            languages=("fortran",),
        )
        series = rates["fortran"]
        assert [p.version for p in series] == [
            "8.1.2", "8.1.3", "8.1.4", "8.1.5", "8.1.6", "8.1.7", "8.1.8",
            "8.2.0",
        ]
        # Fortran gains exactly the 8.1.7 fix
        assert series[5].pass_rate >= series[4].pass_rate

    def test_shared_config_not_mutated(self, suite10):
        # run_vendor_version used to assign config.languages in place,
        # leaving the caller's (often shared) config pinned to the last
        # language it happened to run
        config = HarnessConfig(iterations=1, run_cross=False)
        before = tuple(config.languages)
        run_vendor_version(vendor_version("caps", "3.3.4"), "c",
                           suite10, config)
        assert tuple(config.languages) == before

    def test_sweep_leaves_config_reusable(self, suite10):
        config = HarnessConfig(iterations=1, run_cross=False)
        vendor_pass_rates("caps", suite10, config, languages=("c",))
        assert tuple(config.languages) == ("c", "fortran")
        # the untouched config still drives a fortran point correctly
        point = run_vendor_version(vendor_version("caps", "3.3.4"),
                                   "fortran", suite10, config)
        assert point.language == "fortran"
        assert point.tests == len(suite10.for_language("fortran"))
