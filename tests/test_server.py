"""Tests for :mod:`repro.server`: the campaign server, its wire
protocol and the client.

The load-bearing scenarios, mirrored by the CI server-smoke job:
concurrent campaigns render byte-identical to direct ``run_suite``
runs; cancelling one campaign mid-flight leaves its neighbours
untouched (the per-campaign CancelToken bugfix); a killed server
resumes its in-flight campaigns from the server journal.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.harness import ValidationRunner, render_csv
from repro.server import (
    CampaignClient,
    ProtocolError,
    ServerError,
    normalize_spec,
    serve_in_thread,
    state_exit_code,
)
from repro.server.protocol import (
    spec_behavior,
    spec_config,
    spec_suite,
)

#: a fast campaign spec (~1s serial) shared across tests
_SMALL = {
    "suite": "1.0",
    "format": "csv",
    "config": {"iterations": 2, "languages": ["c"],
               "feature_prefixes": ["loop", "parallel"]},
}

#: a slow campaign (full suite, both languages) for mid-flight cancels
_BIG = {"suite": "1.0", "format": "csv", "config": {"iterations": 3}}


def _direct_csv(spec: dict) -> str:
    """The reference rendering: a plain serial run_suite of the spec."""
    norm = normalize_spec(spec)
    runner = ValidationRunner(spec_behavior(norm), spec_config(norm))
    return render_csv(runner.run_suite(spec_suite(norm)))


@pytest.fixture
def server(tmp_path):
    handle = serve_in_thread(str(tmp_path / "state"))
    try:
        yield handle
    finally:
        handle.stop()


def _client(handle) -> CampaignClient:
    return CampaignClient.at(handle.address)


# ---------------------------------------------------------------------------
# protocol (no server needed)
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_normalize_defaults(self):
        spec = normalize_spec({})
        assert spec["suite"] == "1.0"
        assert spec["scheduler"] == "local"
        assert spec["format"] == "text"
        assert spec["config"]["iterations"] == 3

    def test_normalized_config_roundtrips(self):
        spec = normalize_spec(_SMALL)
        again = normalize_spec(spec)
        assert again == spec

    @pytest.mark.parametrize("bad,match", [
        ({"suite": "3.0"}, "unknown suite"),
        ({"scheduler": "slurm"}, "unknown scheduler"),
        ({"format": "pdf"}, "unknown format"),
        ({"workers": 0}, "workers"),
        ({"typo": True}, "unknown spec key"),
        ({"vendor": "caps"}, "version"),
        ({"vendor": "caps", "version": "3.0.7"}, "one language"),
        ({"config": {"live_stream": "x.ndjson"}}, "server-managed"),
        ({"config": {"iterationz": 1}}, "bad config"),
    ])
    def test_bad_specs_rejected(self, bad, match):
        with pytest.raises(ProtocolError, match=match):
            normalize_spec(bad)

    def test_vendor_spec_with_single_language_accepted(self):
        spec = normalize_spec({"vendor": "caps", "version": "3.0.7",
                               "config": {"languages": ["c"]}})
        assert spec_behavior(spec).name == "caps"

    def test_exit_code_mapping(self):
        assert state_exit_code("done", False) == 0
        assert state_exit_code("done", True) == 2
        assert state_exit_code("failed", None) == 1
        assert state_exit_code("cancelled", None) == 3
        assert state_exit_code("running", None) is None


# ---------------------------------------------------------------------------
# submit / status / tail against a live server
# ---------------------------------------------------------------------------


class TestServerRoundTrip:
    def test_submit_renders_byte_identical_to_direct_run(self, server):
        client = _client(server)
        assert client.ping()["format"] == "repro.server/v1"
        cid = client.submit(_SMALL)["id"]
        info = client.wait(cid, timeout_s=120)
        assert info["state"] == "done" and info["exit"] == 0
        with open(info["report_path"], encoding="utf-8") as fh:
            assert fh.read() == _direct_csv(_SMALL)

    def test_sched_backend_submission(self, server):
        client = _client(server)
        spec = dict(_SMALL, scheduler="shards", workers=2)
        cid = client.submit(spec)["id"]
        info = client.wait(cid, timeout_s=120)
        assert info["state"] == "done"
        with open(info["report_path"], encoding="utf-8") as fh:
            assert fh.read() == _direct_csv(_SMALL)
        # the shard campaign journaled into per-shard segments
        root = server.server.root
        assert os.path.exists(os.path.join(root, f"{cid}.journal.shard0"))

    def test_tail_replays_and_terminates(self, server):
        client = _client(server)
        cid = client.submit(_SMALL)["id"]
        client.wait(cid, timeout_s=120)
        lines = list(client.tail(cid))
        assert lines[-1]["end"] and lines[-1]["state"] == "done"
        records = [line["record"] for line in lines[:-1]]
        kinds = {r.get("type") for r in records}
        assert "event" in kinds and "snapshot" in kinds
        assert records[-1]["type"] == "snapshot" and records[-1]["final"]
        # live tail (subscribed before completion) sees the same stream
        cid2 = client.submit(_SMALL)["id"]
        live = list(client.tail(cid2, timeout_s=120))
        assert live[-1]["end"] and live[-1]["state"] == "done"

    def test_status_and_errors(self, server):
        client = _client(server)
        assert client.status()["campaigns"] == []
        with pytest.raises(ServerError, match="no such campaign"):
            client.status("c9999")
        with pytest.raises(ServerError, match="no such campaign"):
            client.cancel("c9999")
        with pytest.raises(ServerError, match="unknown spec key"):
            client.submit({"typo": 1})

    def test_failures_map_to_exit_2(self, server):
        client = _client(server)
        spec = {
            "suite": "1.0", "format": "csv",
            "config": {"iterations": 1, "languages": ["c"],
                       "feature_prefixes": ["loop.collapse"],
                       "fault_plan": "iteration=1.0,persistent,seed=3"},
        }
        cid = client.submit(spec)["id"]
        info = client.wait(cid, timeout_s=120)
        assert info["state"] == "done" and info["exit"] == 2


# ---------------------------------------------------------------------------
# concurrency + cancellation (the tentpole scenario)
# ---------------------------------------------------------------------------


class TestConcurrentCancellation:
    def test_cancel_one_of_three_leaves_neighbours_byte_identical(
            self, server):
        client = _client(server)
        doomed = client.submit(_BIG)["id"]
        small_alt = dict(_SMALL, config=dict(_SMALL["config"], iterations=1))
        survivor_a = client.submit(_SMALL)["id"]
        survivor_b = client.submit(small_alt)["id"]
        # let the doomed campaign actually start running before cancelling
        deadline = time.monotonic() + 30
        while client.status(doomed)["campaign"]["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        response = client.cancel(doomed)
        assert doomed in response["resume"]

        info = client.wait(doomed, timeout_s=120)
        assert info["state"] == "cancelled" and info["exit"] == 3
        assert doomed in info["resume"]
        for cid, spec in ((survivor_a, _SMALL), (survivor_b, small_alt)):
            done = client.wait(cid, timeout_s=300)
            assert done["state"] == "done", f"{cid} not done: {done}"
            with open(done["report_path"], encoding="utf-8") as fh:
                assert fh.read() == _direct_csv(spec)

    def test_cancelled_campaign_resubmits_to_completion(self, server):
        client = _client(server)
        cid = client.submit(_BIG)["id"]
        deadline = time.monotonic() + 30
        while client.status(cid)["campaign"]["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        client.cancel(cid)
        info = client.wait(cid, timeout_s=120)
        assert info["state"] == "cancelled"
        before = len(
            __import__("repro.journal", fromlist=["read_journal"])
            .read_journal(os.path.join(server.server.root,
                                       f"{cid}.journal")).records
        ) if os.path.exists(os.path.join(server.server.root,
                                         f"{cid}.journal")) else 0
        client.resubmit(cid)
        done = client.wait(cid, timeout_s=600)
        assert done["state"] == "done" and done["exit"] == 0
        with open(done["report_path"], encoding="utf-8") as fh:
            assert fh.read() == _direct_csv(_BIG)
        # the resubmission replayed journaled units instead of starting over
        if before:
            final = list(client.tail(cid))
            records = [line["record"] for line in final[:-1]]
            snapshots = [r for r in records if r.get("type") == "snapshot"]
            assert snapshots[-1]["replayed"] >= before

    def test_double_cancel_rejected(self, server):
        client = _client(server)
        cid = client.submit(_SMALL)["id"]
        client.wait(cid, timeout_s=120)
        with pytest.raises(ServerError, match="already done"):
            client.cancel(cid)
        with pytest.raises(ServerError, match="only"):
            # a running/queued campaign cannot be resubmitted; a done one
            # can (it reruns) — exercise the state guard via fresh submit
            fresh = client.submit(_BIG)["id"]
            try:
                client.resubmit(fresh)
            finally:
                client.cancel(fresh)


# ---------------------------------------------------------------------------
# server-kill resume (the journal story)
# ---------------------------------------------------------------------------


class TestServerResume:
    def test_killed_server_resumes_campaigns(self, tmp_path):
        root = str(tmp_path / "state")
        handle = serve_in_thread(root)
        client = _client(handle)
        cid = client.submit(_BIG)["id"]
        deadline = time.monotonic() + 30
        while client.status(cid)["campaign"]["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        # graceful drain: the campaign is re-journaled as queued, NOT
        # cancelled, so the next server over this directory picks it up
        handle.stop()

        handle2 = serve_in_thread(root)
        try:
            client2 = _client(handle2)
            info = client2.wait(cid, timeout_s=600)
            assert info["state"] == "done" and info["exit"] == 0
            with open(info["report_path"], encoding="utf-8") as fh:
                assert fh.read() == _direct_csv(_BIG)
        finally:
            handle2.stop()
