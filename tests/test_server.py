"""Tests for :mod:`repro.server`: the campaign server, its wire
protocol and the client.

The load-bearing scenarios, mirrored by the CI server-smoke job:
concurrent campaigns render byte-identical to direct ``run_suite``
runs; cancelling one campaign mid-flight leaves its neighbours
untouched (the per-campaign CancelToken bugfix); a killed server
resumes its in-flight campaigns from the server journal.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.harness import ValidationRunner, render_csv
from repro.server import (
    CampaignClient,
    ProtocolError,
    ServerError,
    normalize_spec,
    serve_in_thread,
    state_exit_code,
)
from repro.server.protocol import (
    spec_behavior,
    spec_config,
    spec_suite,
)

#: a fast campaign spec (~1s serial) shared across tests
_SMALL = {
    "suite": "1.0",
    "format": "csv",
    "config": {"iterations": 2, "languages": ["c"],
               "feature_prefixes": ["loop", "parallel"]},
}

#: a slow campaign (full suite, both languages) for mid-flight cancels
_BIG = {"suite": "1.0", "format": "csv", "config": {"iterations": 3}}


def _direct_csv(spec: dict) -> str:
    """The reference rendering: a plain serial run_suite of the spec."""
    norm = normalize_spec(spec)
    runner = ValidationRunner(spec_behavior(norm), spec_config(norm))
    return render_csv(runner.run_suite(spec_suite(norm)))


@pytest.fixture
def server(tmp_path):
    handle = serve_in_thread(str(tmp_path / "state"))
    try:
        yield handle
    finally:
        handle.stop()


def _client(handle) -> CampaignClient:
    return CampaignClient.at(handle.address)


# ---------------------------------------------------------------------------
# protocol (no server needed)
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_normalize_defaults(self):
        spec = normalize_spec({})
        assert spec["suite"] == "1.0"
        assert spec["scheduler"] == "local"
        assert spec["format"] == "text"
        assert spec["config"]["iterations"] == 3

    def test_normalized_config_roundtrips(self):
        spec = normalize_spec(_SMALL)
        again = normalize_spec(spec)
        assert again == spec

    @pytest.mark.parametrize("bad,match", [
        ({"suite": "3.0"}, "unknown suite"),
        ({"scheduler": "slurm"}, "unknown scheduler"),
        ({"format": "pdf"}, "unknown format"),
        ({"workers": 0}, "workers"),
        ({"typo": True}, "unknown spec key"),
        ({"vendor": "caps"}, "version"),
        ({"vendor": "caps", "version": "3.0.7"}, "one language"),
        ({"config": {"live_stream": "x.ndjson"}}, "server-managed"),
        ({"config": {"iterationz": 1}}, "bad config"),
    ])
    def test_bad_specs_rejected(self, bad, match):
        with pytest.raises(ProtocolError, match=match):
            normalize_spec(bad)

    def test_vendor_spec_with_single_language_accepted(self):
        spec = normalize_spec({"vendor": "caps", "version": "3.0.7",
                               "config": {"languages": ["c"]}})
        assert spec_behavior(spec).name == "caps"

    def test_exit_code_mapping(self):
        assert state_exit_code("done", False) == 0
        assert state_exit_code("done", True) == 2
        assert state_exit_code("failed", None) == 1
        assert state_exit_code("cancelled", None) == 3
        assert state_exit_code("running", None) is None


# ---------------------------------------------------------------------------
# submit / status / tail against a live server
# ---------------------------------------------------------------------------


class TestServerRoundTrip:
    def test_submit_renders_byte_identical_to_direct_run(self, server):
        client = _client(server)
        assert client.ping()["format"] == "repro.server/v1"
        cid = client.submit(_SMALL)["id"]
        info = client.wait(cid, timeout_s=120)
        assert info["state"] == "done" and info["exit"] == 0
        with open(info["report_path"], encoding="utf-8") as fh:
            assert fh.read() == _direct_csv(_SMALL)

    def test_sched_backend_submission(self, server):
        client = _client(server)
        spec = dict(_SMALL, scheduler="shards", workers=2)
        cid = client.submit(spec)["id"]
        info = client.wait(cid, timeout_s=120)
        assert info["state"] == "done"
        with open(info["report_path"], encoding="utf-8") as fh:
            assert fh.read() == _direct_csv(_SMALL)
        # the shard campaign journaled into per-shard segments
        root = server.server.root
        assert os.path.exists(os.path.join(root, f"{cid}.journal.shard0"))

    def test_tail_replays_and_terminates(self, server):
        client = _client(server)
        cid = client.submit(_SMALL)["id"]
        client.wait(cid, timeout_s=120)
        lines = list(client.tail(cid))
        assert lines[-1]["end"] and lines[-1]["state"] == "done"
        records = [line["record"] for line in lines[:-1]]
        kinds = {r.get("type") for r in records}
        assert "event" in kinds and "snapshot" in kinds
        assert records[-1]["type"] == "snapshot" and records[-1]["final"]
        # live tail (subscribed before completion) sees the same stream
        cid2 = client.submit(_SMALL)["id"]
        live = list(client.tail(cid2, timeout_s=120))
        assert live[-1]["end"] and live[-1]["state"] == "done"

    def test_status_and_errors(self, server):
        client = _client(server)
        assert client.status()["campaigns"] == []
        with pytest.raises(ServerError, match="no such campaign"):
            client.status("c9999")
        with pytest.raises(ServerError, match="no such campaign"):
            client.cancel("c9999")
        with pytest.raises(ServerError, match="unknown spec key"):
            client.submit({"typo": 1})

    def test_failures_map_to_exit_2(self, server):
        client = _client(server)
        spec = {
            "suite": "1.0", "format": "csv",
            "config": {"iterations": 1, "languages": ["c"],
                       "feature_prefixes": ["loop.collapse"],
                       "fault_plan": "iteration=1.0,persistent,seed=3"},
        }
        cid = client.submit(spec)["id"]
        info = client.wait(cid, timeout_s=120)
        assert info["state"] == "done" and info["exit"] == 2


# ---------------------------------------------------------------------------
# concurrency + cancellation (the tentpole scenario)
# ---------------------------------------------------------------------------


class TestConcurrentCancellation:
    def test_cancel_one_of_three_leaves_neighbours_byte_identical(
            self, server):
        client = _client(server)
        doomed = client.submit(_BIG)["id"]
        small_alt = dict(_SMALL, config=dict(_SMALL["config"], iterations=1))
        survivor_a = client.submit(_SMALL)["id"]
        survivor_b = client.submit(small_alt)["id"]
        # let the doomed campaign actually start running before cancelling
        deadline = time.monotonic() + 30
        while client.status(doomed)["campaign"]["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        response = client.cancel(doomed)
        assert doomed in response["resume"]

        info = client.wait(doomed, timeout_s=120)
        assert info["state"] == "cancelled" and info["exit"] == 3
        assert doomed in info["resume"]
        for cid, spec in ((survivor_a, _SMALL), (survivor_b, small_alt)):
            done = client.wait(cid, timeout_s=300)
            assert done["state"] == "done", f"{cid} not done: {done}"
            with open(done["report_path"], encoding="utf-8") as fh:
                assert fh.read() == _direct_csv(spec)

    def test_cancelled_campaign_resubmits_to_completion(self, server):
        client = _client(server)
        cid = client.submit(_BIG)["id"]
        deadline = time.monotonic() + 30
        while client.status(cid)["campaign"]["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        client.cancel(cid)
        info = client.wait(cid, timeout_s=120)
        assert info["state"] == "cancelled"
        before = len(
            __import__("repro.journal", fromlist=["read_journal"])
            .read_journal(os.path.join(server.server.root,
                                       f"{cid}.journal")).records
        ) if os.path.exists(os.path.join(server.server.root,
                                         f"{cid}.journal")) else 0
        client.resubmit(cid)
        done = client.wait(cid, timeout_s=600)
        assert done["state"] == "done" and done["exit"] == 0
        with open(done["report_path"], encoding="utf-8") as fh:
            assert fh.read() == _direct_csv(_BIG)
        # the resubmission replayed journaled units instead of starting over
        if before:
            final = list(client.tail(cid))
            records = [line["record"] for line in final[:-1]]
            snapshots = [r for r in records if r.get("type") == "snapshot"]
            assert snapshots[-1]["replayed"] >= before

    def test_double_cancel_rejected(self, server):
        client = _client(server)
        cid = client.submit(_SMALL)["id"]
        client.wait(cid, timeout_s=120)
        with pytest.raises(ServerError, match="already done"):
            client.cancel(cid)
        with pytest.raises(ServerError, match="only"):
            # a running/queued campaign cannot be resubmitted; a done one
            # can (it reruns) — exercise the state guard via fresh submit
            fresh = client.submit(_BIG)["id"]
            try:
                client.resubmit(fresh)
            finally:
                client.cancel(fresh)


# ---------------------------------------------------------------------------
# server-kill resume (the journal story)
# ---------------------------------------------------------------------------


class TestServerResume:
    def test_killed_server_resumes_campaigns(self, tmp_path):
        root = str(tmp_path / "state")
        handle = serve_in_thread(root)
        client = _client(handle)
        cid = client.submit(_BIG)["id"]
        deadline = time.monotonic() + 30
        while client.status(cid)["campaign"]["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        # graceful drain: the campaign is re-journaled as queued, NOT
        # cancelled, so the next server over this directory picks it up
        handle.stop()

        handle2 = serve_in_thread(root)
        try:
            client2 = _client(handle2)
            info = client2.wait(cid, timeout_s=600)
            assert info["state"] == "done" and info["exit"] == 0
            with open(info["report_path"], encoding="utf-8") as fh:
                assert fh.read() == _direct_csv(_BIG)
        finally:
            handle2.stop()


# ---------------------------------------------------------------------------
# supervision: bounded tail queues + the campaign watchdog
# ---------------------------------------------------------------------------


class TestBoundedTailQueue:
    def test_drop_oldest_eviction_counts_drops(self):
        from repro.server.app import BoundedTailQueue

        queue = BoundedTailQueue(capacity=2)
        for n in range(5):
            queue.put(n)
        assert queue.dropped == 3
        # the two newest survive, in order
        assert queue._queue.get_nowait() == 3
        assert queue._queue.get_nowait() == 4

    def test_capacity_validated(self):
        from repro.server.app import BoundedTailQueue

        with pytest.raises(ValueError, match="capacity"):
            BoundedTailQueue(capacity=0)

    def test_server_knob_validation(self, tmp_path):
        from repro.server.app import CampaignServer

        with pytest.raises(ValueError, match="watchdog_s"):
            CampaignServer(str(tmp_path), watchdog_s=0)
        with pytest.raises(ValueError, match="restart_budget"):
            CampaignServer(str(tmp_path), restart_budget=-1)


#: three single-template prefixes, each unit stalling well past the
#: watchdog on its first attempt (the third unit is what guarantees the
#: budget-exhausted run still has un-started work to abandon)
_STALLED = {
    "suite": "1.0", "format": "csv",
    "config": {"iterations": 1, "languages": ["c"],
               "feature_prefixes": ["loop.collapse", "parallel.num_gangs",
                                    "data.copyin"],
               "fault_plan": "stall=1.0,stall-s=2.0,seed=5"},
}


class TestWatchdog:
    def test_watchdog_requeues_then_gives_up_then_resume_heals(
            self, tmp_path):
        handle = serve_in_thread(str(tmp_path / "state"),
                                 watchdog_s=0.75, restart_budget=1)
        try:
            client = _client(handle)
            cid = client.submit(_STALLED)["id"]
            # run 1: unit A stalls -> watchdog cancels + requeues (restart
            # 1/1); the in-flight unit still completes and journals.
            # run 2: unit A replays, unit B stalls -> the second fire
            # exceeds the budget; unit B drains to the journal, unit C is
            # never started, and the campaign fails with a resume hint.
            info = client.wait(cid, timeout_s=120)
            assert info["state"] == "failed" and info["exit"] == 1
            assert info["restarts"] == 2
            assert "watchdog" in info["error"]
            assert "restart budget" in info["error"]
            assert "resume" in info["error"]
            assert cid in info["resume"]
            # both stalled units finished during their drains, so the
            # resubmission replays everything and renders byte-identical
            # to a fault-free run of the spec (transient stalls never
            # change results, only wall-clock)
            clean = dict(_STALLED,
                         config={k: v for k, v in _STALLED["config"].items()
                                 if k != "fault_plan"})
            client.resubmit(cid)
            done = client.wait(cid, timeout_s=120)
            assert done["state"] == "done" and done["exit"] == 0
            with open(done["report_path"], encoding="utf-8") as fh:
                assert fh.read() == _direct_csv(clean)
        finally:
            handle.stop()

    def test_healthy_campaign_never_trips_watchdog(self, tmp_path):
        handle = serve_in_thread(str(tmp_path / "state"),
                                 watchdog_s=30.0, restart_budget=0)
        try:
            client = _client(handle)
            cid = client.submit(_SMALL)["id"]
            info = client.wait(cid, timeout_s=120)
            assert info["state"] == "done" and info["restarts"] == 0
            with open(info["report_path"], encoding="utf-8") as fh:
                assert fh.read() == _direct_csv(_SMALL)
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# client retry policy (no server needed)
# ---------------------------------------------------------------------------


class TestClientRetry:
    def _flaky(self, client, failures, response):
        requests = []

        def roundtrip(request):
            requests.append(dict(request))
            if len(requests) <= failures:
                raise ConnectionError("injected transport failure")
            return response

        client._roundtrip = roundtrip
        return requests

    def test_submit_retries_transients_and_marks_idempotent(self):
        sleeps = []
        client = CampaignClient("h", 1, retries=3, backoff_s=0.01,
                                sleeper=sleeps.append)
        requests = self._flaky(client, 2, {"ok": True, "id": "c0001"})
        assert client.submit({"suite": "1.0"})["id"] == "c0001"
        # first attempt is a plain submit; retries ask for dedup because
        # the server may have enqueued the attempt whose response died
        assert "idempotent" not in requests[0]
        assert requests[1]["idempotent"] and requests[2]["idempotent"]
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential backoff

    def test_retry_budget_exhausted_normalizes_to_connection_error(self):
        client = CampaignClient("h", 1, retries=2, backoff_s=0.0,
                                sleeper=lambda s: None)
        self._flaky(client, 99, {})
        with pytest.raises(ConnectionError, match="3 attempt"):
            client.status("c0001")

    def test_server_errors_are_answers_not_retried(self):
        client = CampaignClient("h", 1, retries=3, backoff_s=0.0,
                                sleeper=lambda s: None)
        calls = []

        def refused(request):
            calls.append(request)
            raise ServerError("no such campaign: 'c9999'")

        client._roundtrip = refused
        with pytest.raises(ServerError, match="no such campaign"):
            client.cancel("c9999")
        assert len(calls) == 1

    def test_resubmit_retry_detects_landed_first_attempt(self):
        client = CampaignClient("h", 1, retries=2, backoff_s=0.0,
                                sleeper=lambda s: None)
        requests = []

        def roundtrip(request):
            requests.append(dict(request))
            if len(requests) == 1:  # the resume whose response was lost
                raise ConnectionError("injected transport failure")
            assert request["op"] == "status"  # retry checks state first
            return {"ok": True,
                    "campaign": {"id": "c0001", "state": "queued"}}

        client._roundtrip = roundtrip
        response = client.resubmit("c0001")
        assert response["deduped"] and response["state"] == "queued"

    def test_checked_normalizes_wire_damage(self):
        checked = CampaignClient._checked
        with pytest.raises(ConnectionError, match="garbled"):
            checked(b"\xff\x00 injected garbled frame \xf7\n")
        with pytest.raises(ConnectionError, match="mid-frame"):
            checked(b'{"ok": true, "trunc')  # no newline: torn frame
        with pytest.raises(ServerError, match="nope"):
            checked(b'{"ok": false, "error": "nope"}\n')
        assert checked(b'{"ok": true, "id": "c0001"}\n')["id"] == "c0001"

    def test_backoff_deterministic_jittered_exponential(self):
        a = CampaignClient("h", 1, backoff_s=0.1, jitter_seed=5)
        b = CampaignClient("h", 1, backoff_s=0.1, jitter_seed=5)
        other = CampaignClient("h", 1, backoff_s=0.1, jitter_seed=6)
        delays = [a._backoff(n, "submit") for n in range(4)]
        assert delays == [b._backoff(n, "submit") for n in range(4)]
        assert delays != [other._backoff(n, "submit") for n in range(4)]
        for n, delay in enumerate(delays):
            base = 0.1 * (2 ** n)
            assert base <= delay < base * 1.5
        assert all(x < y for x, y in zip(delays, delays[1:]))

    def test_client_knob_validation(self):
        with pytest.raises(ValueError, match="retries"):
            CampaignClient("h", 1, retries=-1)
        with pytest.raises(ValueError, match="backoff_s"):
            CampaignClient("h", 1, backoff_s=-0.1)


# ---------------------------------------------------------------------------
# wire chaos against a live server (conn / frame sites + idempotent dedup)
# ---------------------------------------------------------------------------


class TestWireFaults:
    def test_requests_heal_and_lost_submit_dedups(self, tmp_path):
        from repro.faults import FaultPlan

        handle = serve_in_thread(
            str(tmp_path / "state"),
            fault_plan=FaultPlan.parse("conn=1.0,frame=1.0,seed=9"),
        )
        try:
            client = CampaignClient.at(handle.address, backoff_s=0.01)
            # the first ping's response is garbled AND dropped mid-frame;
            # the retry finds both transient sites spent
            assert client.ping()["format"] == "repro.server/v1"
            # the first submit's response dies on the wire AFTER the
            # server enqueued the campaign: the retried (idempotent)
            # submit must dedup against it, not run the campaign twice
            response = client.submit(_SMALL)
            cid = response["id"]
            campaigns = client.status()["campaigns"]
            assert [c["id"] for c in campaigns] == [cid]
            info = client.wait(cid, timeout_s=120)
            assert info["state"] == "done"
            with open(info["report_path"], encoding="utf-8") as fh:
                assert fh.read() == _direct_csv(_SMALL)
        finally:
            handle.stop()
