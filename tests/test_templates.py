"""Tests for the template engine (parser + generator)."""

import pytest
from hypothesis import given, strategies as st

from repro.templates import (
    TemplateError,
    generate,
    generate_cross,
    generate_functional,
    generate_pair,
    parse_template,
)
from repro.suite.builders import check, cross, swap, template_text


def _minimal(code: str, **kwargs) -> str:
    defaults = dict(
        name="t.c", feature="loop", language="c", code=code,
    )
    defaults.update(kwargs)
    return template_text(**defaults)


class TestParser:
    def test_full_header(self):
        text = template_text(
            name="x.c", feature="parallel.num_gangs", language="c",
            description="desc here", version="1.0",
            dependences=["parallel.reduction", "loop"],
            defaults={"N": 10}, crossexpect="same",
            environment={"ACC_DEVICE_TYPE": "NVIDIA"},
            code="int main(){ return 1; }",
        )
        tpl = parse_template(text)
        assert tpl.name == "x.c"
        assert tpl.feature == "parallel.num_gangs"
        assert tpl.dependences == ["parallel.reduction", "loop"]
        assert tpl.defaults == {"N": "10"}
        assert tpl.crossexpect == "same"
        assert tpl.environment == {"ACC_DEVICE_TYPE": "NVIDIA"}

    def test_missing_root_raises(self):
        with pytest.raises(TemplateError):
            parse_template("<acctv:testcode>x</acctv:testcode>")

    def test_missing_directive_raises(self):
        with pytest.raises(TemplateError):
            parse_template(
                "<acctv:test><acctv:testcode>x</acctv:testcode></acctv:test>"
            )

    def test_empty_testcode_raises(self):
        with pytest.raises(TemplateError):
            parse_template(_minimal("   "))

    def test_unbalanced_markers_raise(self):
        with pytest.raises(TemplateError):
            parse_template(_minimal("a <acctv:check>b"))

    def test_nested_markers_raise(self):
        bad = "<acctv:check>a<acctv:crosscheck>b</acctv:crosscheck>c</acctv:check>"
        with pytest.raises(TemplateError):
            parse_template(_minimal(bad))

    def test_unknown_language_raises(self):
        with pytest.raises(TemplateError):
            parse_template(_minimal("x", language="cobol"))

    def test_invalid_crossexpect_raises(self):
        with pytest.raises(TemplateError):
            parse_template(_minimal("x", crossexpect="maybe"))

    def test_has_cross_detection(self):
        assert not parse_template(_minimal("plain code")).has_cross
        assert parse_template(_minimal(check("code"))).has_cross


class TestGenerator:
    def test_functional_keeps_check_drops_cross(self):
        tpl = parse_template(_minimal(
            "A " + check("KEEP") + " " + cross("DROP") + " B"
        ))
        out = generate_functional(tpl)
        assert "KEEP" in out.source and "DROP" not in out.source
        assert "acctv" not in out.source

    def test_cross_drops_check_keeps_cross(self):
        tpl = parse_template(_minimal(
            "A " + check("DROP") + " " + cross("KEEP") + " B"
        ))
        out = generate_cross(tpl)
        assert "KEEP" in out.source and "DROP" not in out.source

    def test_swap_substitution(self):
        tpl = parse_template(_minimal(swap("firstprivate(t)", "private(t)")))
        functional = generate_functional(tpl)
        crossed = generate_cross(tpl)
        assert "firstprivate(t)" in functional.source
        assert "private(t)" in crossed.source
        assert "firstprivate" not in crossed.source

    def test_placeholders_from_defaults(self):
        tpl = parse_template(_minimal("int a[{{N}}];", defaults={"N": 16}))
        assert "int a[16];" in generate_functional(tpl).source

    def test_placeholders_override(self):
        tpl = parse_template(_minimal("int a[{{N}}];", defaults={"N": 16}))
        out = generate_functional(tpl, params={"N": 99})
        assert "int a[99];" in out.source

    def test_missing_placeholder_raises(self):
        tpl = parse_template(_minimal("int a[{{MISSING}}];"))
        with pytest.raises(TemplateError):
            generate_functional(tpl)

    def test_cross_without_markers_raises(self):
        tpl = parse_template(_minimal("no markers at all"))
        with pytest.raises(TemplateError):
            generate_cross(tpl)

    def test_generate_pair(self):
        tpl = parse_template(_minimal(check("X")))
        functional, crossed = generate_pair(tpl)
        assert functional.mode == "functional"
        assert crossed is not None and crossed.mode == "cross"
        plain = parse_template(_minimal("plain"))
        _functional, none_cross = generate_pair(plain)
        assert none_cross is None

    def test_unknown_mode_rejected(self):
        tpl = parse_template(_minimal(check("X")))
        with pytest.raises(ValueError):
            generate(tpl, "sideways")

    def test_blank_line_collapse(self):
        tpl = parse_template(_minimal("a\n" + cross("x") + "\n\n\nb"))
        out = generate_functional(tpl)
        assert "\n\n\n" not in out.source

    @given(st.text(alphabet=st.characters(blacklist_characters="<{}"),
                   min_size=1, max_size=60))
    def test_marker_free_code_roundtrips(self, code):
        """Generation of marker-free code is the identity modulo blank-line
        normalisation."""
        if not code.strip():
            return
        tpl = parse_template(_minimal(code))
        out = generate_functional(tpl)
        assert out.source.strip().replace("\n\n", "\n") is not None
        for line in out.source.strip().split("\n"):
            assert line in code or line.strip() == ""

    @given(st.integers(1, 500))
    def test_numeric_params_substitute(self, n):
        tpl = parse_template(_minimal("len {{N}} end", defaults={"N": 1}))
        out = generate_functional(tpl, params={"N": n})
        assert f"len {n} end" in out.source
