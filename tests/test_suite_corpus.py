"""Corpus-wide integration tests.

Every template in the 1.0 corpus is exercised against the conforming
reference implementation:

* the functional test must pass (value 1);
* where the template expects a *different* cross outcome, the cross test
  must produce a wrong value or an error;
* where the template declares the cross `same` (scheduling-only clauses),
  the cross must pass.

Parametrised per template: each case covers a distinct OpenACC feature in
one language.
"""

import pytest

from repro.accsim.errors import AccRuntimeError
from repro.compiler import Compiler, CompileError
from repro.suite import openacc10_suite
from repro.templates import generate_cross, generate_functional

_SUITE = openacc10_suite()
_CC = Compiler()


def _ids():
    return [t.name for t in _SUITE]


@pytest.fixture(scope="module")
def compiled_cache():
    return {}


@pytest.mark.parametrize("template", list(_SUITE), ids=_ids())
def test_functional_passes_on_reference(template):
    generated = generate_functional(template)
    program = _CC.compile(generated.source, template.language, template.name)
    result = program.run(env_vars=template.environment or None)
    assert result.value == 1, (
        f"functional {template.name} returned {result.value}"
    )


@pytest.mark.parametrize(
    "template",
    [t for t in _SUITE if t.has_cross],
    ids=lambda t: t.name,
)
def test_cross_behaviour_on_reference(template):
    generated = generate_cross(template)
    try:
        program = _CC.compile(generated.source, template.language, template.name)
        result = program.run(env_vars=template.environment or None)
        outcome = "pass" if result.value == 1 else "wrong"
    except (CompileError, AccRuntimeError):
        outcome = "wrong"
    if template.crossexpect == "different":
        assert outcome == "wrong", (
            f"cross {template.name} still passed — the tested directive "
            "would be unverifiable"
        )
    else:
        assert outcome == "pass", (
            f"cross {template.name} expected to match but produced {outcome}"
        )


class TestCorpusShape:
    def test_paper_scale(self):
        """'more than 160 test cases (both C and Fortran)' (Section III)."""
        assert len(_SUITE) > 160

    def test_both_languages_equally_covered(self):
        c_features = {t.feature for t in _SUITE.for_language("c")}
        f_features = {t.feature for t in _SUITE.for_language("fortran")}
        assert c_features == f_features

    def test_one_feature_per_test(self):
        """'single generated test code must test for only one OpenACC
        feature' — enforced as (feature, language) uniqueness."""
        keys = [(t.feature, t.language) for t in _SUITE]
        assert len(keys) == len(set(keys))

    def test_tree_coverage(self):
        """Directives, clauses, runtime routines and env vars all covered."""
        features = set(_SUITE.features())
        assert "parallel" in features and "kernels" in features
        assert any(f.startswith("loop.reduction.") for f in features)
        assert any(f.startswith("runtime.") for f in features)
        assert any(f.startswith("env.") for f in features)

    def test_every_template_documented(self):
        for template in _SUITE:
            assert template.description, f"{template.name} lacks a description"

    def test_dependences_reference_known_features(self):
        """Dependences must name spec features (some are covered jointly by
        another feature's template, e.g. acc_get_device_type)."""
        from repro.spec.features import OPENACC_10

        for template in _SUITE:
            for dep in template.dependences:
                assert dep in OPENACC_10, (
                    f"{template.name} depends on unknown {dep!r}"
                )

    def test_selection_api(self):
        only_data = _SUITE.select(prefixes=["data"])
        assert only_data
        assert all(t.feature.startswith("data") for t in only_data)
        c_only = _SUITE.select(languages=["c"])
        assert all(t.language == "c" for t in c_only)
