"""Tests for the Titan production-harness simulation (Section VII)."""

import pytest

from repro.compiler import CompilerBehavior
from repro.harness import HarnessConfig
from repro.harness.titan import (
    STACK_CUDA,
    STACK_OPENCL,
    TitanCluster,
    TitanHarness,
    default_stacks,
)
from repro.suite import openacc10_suite


@pytest.fixture(scope="module")
def harness():
    cluster = TitanCluster(num_nodes=8, degraded_fraction=0.25, seed=7)
    # a small feature slice keeps sweeps fast while still exercising the
    # degraded-node fault classes (update / async / copyout / reductions)
    return TitanHarness(
        cluster,
        openacc10_suite(),
        config=HarnessConfig(iterations=1, run_cross=False, languages=("c",)),
        feature_prefixes=["update", "parallel"],
    )


class TestCluster:
    def test_degraded_fraction(self):
        cluster = TitanCluster(num_nodes=20, degraded_fraction=0.25, seed=1)
        degraded = [n for n in cluster.nodes if not n.healthy]
        assert len(degraded) == 5

    @pytest.mark.parametrize("num_nodes,fraction,expected", [
        (1, 0.25, 1),   # round() gave 0: a "degraded" cluster with no
        (2, 0.25, 1),   # degraded node (banker's rounding of 0.5)
        (3, 0.10, 1),
        (4, 0.25, 1),
        (6, 0.34, 3),
        (30, 0.10, 3),  # float fuzz: 30*0.1 = 3.0000000000000004
        (5, 0.0, 0),
        (3, 1.0, 3),
    ])
    def test_degraded_count_small_clusters(self, num_nodes, fraction,
                                           expected):
        # any nonzero fraction must degrade at least one node — the whole
        # point of a degraded cluster fixture is that something is broken
        cluster = TitanCluster(num_nodes=num_nodes,
                               degraded_fraction=fraction, seed=1)
        degraded = [n for n in cluster.nodes if not n.healthy]
        assert len(degraded) == expected

    def test_heal_restores_factory_stacks(self):
        cluster = TitanCluster(num_nodes=4, degraded_fraction=1.0, seed=1)
        node = cluster.nodes[2]
        assert not node.healthy
        cluster.heal(node.node_id)
        assert node.healthy
        assert node.stacks == default_stacks()

    def test_deterministic_construction(self):
        a = TitanCluster(num_nodes=10, seed=3)
        b = TitanCluster(num_nodes=10, seed=3)
        assert [n.healthy for n in a.nodes] == [n.healthy for n in b.nodes]

    def test_stacks_have_distinct_backends(self):
        stacks = default_stacks()
        assert (stacks[STACK_CUDA].concrete_device_type
                is not stacks[STACK_OPENCL].concrete_device_type)

    def test_upgrade_preserves_degradation(self):
        cluster = TitanCluster(num_nodes=8, degraded_fraction=0.5, seed=2)
        new = CompilerBehavior(name="titan-cc", version="cuda-next")
        cluster.upgrade_stack(STACK_CUDA, new)
        for node in cluster.nodes:
            if node.healthy:
                assert node.stacks[STACK_CUDA].version == "cuda-next"
            else:
                # degraded nodes carry faults on top of the new version
                assert node.stacks[STACK_CUDA] != new


class TestHarness:
    def test_healthy_nodes_pass_degraded_flagged(self, harness):
        checks = harness.sweep(sample_size=8, seed=0, stacks=(STACK_CUDA,))
        healthy = [c for c in checks if c.healthy]
        degraded = [c for c in checks if not c.healthy]
        assert healthy and degraded
        assert all(not c.flagged for c in healthy)
        assert all(c.flagged for c in degraded)

    def test_sweep_covers_both_stacks(self, harness):
        checks = harness.sweep(sample_size=2, seed=1)
        stacks = {c.stack for c in checks}
        assert stacks == {STACK_CUDA, STACK_OPENCL}

    def test_timeline_tracks_regression_and_recovery(self):
        cluster = TitanCluster(num_nodes=6, degraded_fraction=0.0, seed=5)
        harness = TitanHarness(
            cluster, openacc10_suite(),
            config=HarnessConfig(iterations=1, run_cross=False,
                                 languages=("c",)),
            feature_prefixes=["update"],
        )
        regressed = CompilerBehavior(name="titan-cc", version="cuda-bad",
                                     ignore_update=True)
        fixed = CompilerBehavior(name="titan-cc", version="cuda-fixed")
        records = harness.timeline(
            epochs=3, sample_size=3,
            upgrades={1: (STACK_CUDA, regressed), 2: (STACK_CUDA, fixed)},
        )
        assert records[0][STACK_CUDA] == 100.0
        assert records[1][STACK_CUDA] < 100.0
        assert records[2][STACK_CUDA] == 100.0
        # a cluster-wide stack regression must not quarantine the nodes:
        # every sampled check of the stack failing points at the rollout
        assert all(r["quarantined"] == 0.0 for r in records)

    def test_sweep_span_attributes_survive_roundtrip(self, tmp_path):
        # span.set() used to run after the span closed, so drained and
        # serialized traces carried a titan.sweep span with no checks or
        # flagged attributes
        from repro.obs import Tracer, read_trace, write_trace

        cluster = TitanCluster(num_nodes=4, degraded_fraction=0.5, seed=7)
        tracer = Tracer()
        harness = TitanHarness(
            cluster, openacc10_suite(),
            config=HarnessConfig(iterations=1, run_cross=False,
                                 languages=("c",)),
            feature_prefixes=["update"],
            tracer=tracer,
        )
        checks = harness.sweep(sample_size=4, seed=0, stacks=(STACK_CUDA,))
        path = tmp_path / "titan.jsonl"
        write_trace(str(path), tracer)
        trace = read_trace(str(path))
        sweep_spans = [s for s in trace.spans if s.name == "titan.sweep"]
        assert len(sweep_spans) == 1
        span = sweep_spans[0]
        assert span.attrs["checks"] == len(checks)
        assert span.attrs["flagged"] == sum(1 for c in checks if c.flagged)
        assert span.attrs["quarantined"] == len(harness.quarantined)
