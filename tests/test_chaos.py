"""The chaos suite: every fault site at once against a hosted campaign.

The contract under test (DESIGN §5i): with every documented site armed
— in-process, scheduler, journal segment and wire — a server-hosted
campaign *always* terminates with a complete report, and the post-chaos
resume renders byte-identical to a fault-free run of the same spec.
The CI ``chaos-smoke`` job replays the same scenario through the CLI
with a SIGKILLed server in the middle.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import ChaosSchedule, FaultPlan, drive_to_completion
from repro.faults.chaos import RUNNER_SITES, SERVER_SITES, _FIELDS
from repro.harness import ValidationRunner, render_csv
from repro.journal import fsck_journal
from repro.server import CampaignClient, normalize_spec, serve_in_thread
from repro.server.protocol import spec_behavior, spec_config, spec_suite


def _direct_csv(spec: dict) -> str:
    """The fault-free reference rendering of a submission spec."""
    norm = normalize_spec(spec)
    runner = ValidationRunner(spec_behavior(norm), spec_config(norm))
    return render_csv(runner.run_suite(spec_suite(norm)))


# ---------------------------------------------------------------------------
# the schedule itself (no server needed)
# ---------------------------------------------------------------------------


class TestChaosSchedule:
    def test_every_documented_site_is_armed(self):
        from repro.faults.plan import FAULT_SITES

        assert set(RUNNER_SITES) | set(SERVER_SITES) == set(FAULT_SITES)
        assert not set(RUNNER_SITES) & set(SERVER_SITES)
        schedule = ChaosSchedule(seed=3)
        runner, server = schedule.runner_plan(), schedule.server_plan()
        for site in RUNNER_SITES:
            assert getattr(runner, _FIELDS[site]) == 1.0
            assert getattr(server, _FIELDS[site]) == 0.0
        for site in SERVER_SITES:
            assert getattr(server, _FIELDS[site]) == 1.0
            assert getattr(runner, _FIELDS[site]) == 0.0

    def test_plans_are_transient_and_seeded(self):
        schedule = ChaosSchedule(seed=7, rate=0.5, stall_s=0.01)
        for plan in (schedule.runner_plan(), schedule.server_plan()):
            assert plan.seed == 7
            assert plan.max_fires == 1 and not plan.persistent
        # the runner plan round-trips through the config spec string
        described = schedule.runner_plan().describe()
        assert FaultPlan.parse(described) == schedule.runner_plan()

    def test_apply_arms_the_spec_config_without_mutating_it(self):
        spec = {"suite": "1.0", "config": {"iterations": 2}}
        armed = ChaosSchedule(seed=1).apply(spec)
        assert "fault_plan" not in spec["config"]
        assert armed["config"]["iterations"] == 2
        plan = FaultPlan.parse(armed["config"]["fault_plan"])
        assert plan.active and plan.seed == 1
        # and the protocol accepts what apply() produced
        norm = normalize_spec(armed)
        assert spec_config(norm).fault_plan.active

    @pytest.mark.parametrize("bad", [{"rate": 1.5}, {"rate": -0.1},
                                     {"stall_s": -1.0}])
    def test_bad_schedules_rejected(self, bad):
        with pytest.raises(ValueError):
            ChaosSchedule(**bad)


# ---------------------------------------------------------------------------
# the full chaos run: server-hosted campaign, every site firing
# ---------------------------------------------------------------------------


#: small but multi-unit, scheduled onto shards so the shard_death and
#: segment sites actually sit on the execution path
_CHAOS_SPEC = {
    "suite": "1.0",
    "format": "csv",
    "scheduler": "shards",
    "workers": 2,
    # retries >= 1 is what lets the transient compile/iteration crashes
    # heal in-place instead of degrading units to HARNESS_ERROR rows
    "config": {"iterations": 2, "languages": ["c"], "retries": 2,
               "feature_prefixes": ["loop", "parallel"]},
}

#: same campaign on the simk8s control plane (the pod site's path)
_CHAOS_K8S_SPEC = {
    "suite": "1.0",
    "format": "csv",
    "scheduler": "simk8s",
    "workers": 2,
    "config": {"iterations": 2, "languages": ["c"], "retries": 2,
               "feature_prefixes": ["data.copyin", "kernels.if"]},
}


class TestChaosCampaign:
    def test_chaos_campaign_terminates_byte_identical(self, tmp_path):
        schedule = ChaosSchedule(seed=29)
        handle = serve_in_thread(
            str(tmp_path / "state"),
            watchdog_s=30.0,  # armed, but chaos stalls are far shorter:
            restart_budget=2,  # a false trip would show up as restarts > 0
            fault_plan=schedule.server_plan(),
        )
        try:
            client = CampaignClient.at(handle.address)
            info, resubmits = drive_to_completion(
                client, schedule.apply(_CHAOS_SPEC), max_resubmits=8,
                wait_timeout_s=600.0,
            )
            assert info["state"] == "done"
            assert info["restarts"] == 0  # no watchdog false positives
            # chaos cost something (every site was armed at rate 1.0) but
            # converged; the injected journal/segment crashes are what
            # the resubmits healed
            assert resubmits <= 8
            with open(info["report_path"], encoding="utf-8") as stream:
                chaotic = stream.read()
            assert chaotic == _direct_csv(_CHAOS_SPEC)
            # the tail stream survives the wire sites (conn, frame,
            # slow_client) via reconnect + seq dedup, and still ends with
            # a complete end line carrying the drop count
            lines = list(client.tail(info["id"]))
            assert lines[-1]["end"] and lines[-1]["state"] == "done"
            assert lines[-1]["dropped"] >= 0
            # crash consistency: what chaos left on disk passes fsck
            report = fsck_journal(
                os.path.join(str(tmp_path / "state"),
                             f"{info['id']}.journal")
            )
            assert report.resumable
            assert set(report.salvageable_units())  # units actually landed
        finally:
            handle.stop()

    def test_chaos_simk8s_campaign_terminates_byte_identical(self, tmp_path):
        schedule = ChaosSchedule(seed=31)
        handle = serve_in_thread(str(tmp_path / "state"),
                                 fault_plan=schedule.server_plan())
        try:
            client = CampaignClient.at(handle.address)
            info, _ = drive_to_completion(
                client, schedule.apply(_CHAOS_K8S_SPEC), max_resubmits=8,
                wait_timeout_s=600.0,
            )
            assert info["state"] == "done"
            with open(info["report_path"], encoding="utf-8") as stream:
                chaotic = stream.read()
            assert chaotic == _direct_csv(_CHAOS_K8S_SPEC)
        finally:
            handle.stop()
