"""Corner cases (Section IX: "identify corner cases that are in general
quite challenging to be detected manually").

Boundary conditions of the execution model and data environment that the
main corpus does not isolate: empty iteration spaces, single iterations,
more gangs than work, subsection mappings, repeated regions, deep nesting,
and degenerate clause values.
"""

import pytest

from repro.accsim.errors import AccRuntimeError, PresentError
from repro.compiler import Compiler, CompilerBehavior


CC = Compiler()


def run(src: str, lang="c"):
    return CC.compile(src, lang).run()


class TestEmptyAndTinyIterationSpaces:
    def test_empty_loop(self):
        src = """
int main(){
  int i, n = 0, touched = 0;
  int a[4];
  #pragma acc parallel loop copy(a[0:4], touched)
  for(i=0;i<n;i++){ a[i] = 1; touched = 1; }
  return touched == 0;
}
"""
        assert run(src).value == 1

    def test_single_iteration_loop(self):
        src = """
int main(){
  int i, a[1];
  a[0] = 0;
  #pragma acc parallel loop num_gangs(8) copy(a[0:1])
  for(i=0;i<1;i++) a[i] = 7;
  return a[0] == 7;
}
"""
        assert run(src).value == 1

    def test_more_gangs_than_iterations(self):
        src = """
int main(){
  int i, bad = 0;
  int a[3];
  for(i=0;i<3;i++) a[i] = 0;
  #pragma acc parallel num_gangs(16) copy(a[0:3])
  {
    #pragma acc loop gang
    for(i=0;i<3;i++) a[i]++;
  }
  for(i=0;i<3;i++) if (a[i] != 1) bad++;
  return bad == 0;
}
"""
        assert run(src).value == 1

    def test_empty_reduction_keeps_original(self):
        src = """
int main(){
  int i, s = 41;
  #pragma acc parallel loop reduction(+:s)
  for(i=0;i<0;i++) s += 1;
  return s == 41;
}
"""
        assert run(src).value == 1

    def test_empty_region_body(self):
        src = """
int main(){
  #pragma acc parallel num_gangs(4)
  { }
  return 1;
}
"""
        assert run(src).value == 1


class TestSectionCorners:
    def test_single_element_section(self):
        src = """
int main(){
  int i, a[8];
  for(i=0;i<8;i++) a[i] = i;
  #pragma acc parallel loop copy(a[3:1])
  for(i=3;i<4;i++) a[i] = 99;
  return (a[3] == 99) && (a[2] == 2) && (a[4] == 4);
}
"""
        assert run(src).value == 1

    def test_interior_section_isolates_rest(self):
        src = """
int main(){
  int i, ok = 1;
  int a[10];
  for(i=0;i<10;i++) a[i] = i;
  #pragma acc data copyin(a[2:6])
  {
    #pragma acc parallel loop present(a[2:6])
    for(i=2;i<8;i++) a[i] = -1;
    /* host values outside the region's view are untouched */
    for(i=2;i<8;i++) if (a[i] != i) ok = 0;
  }
  return ok;
}
"""
        assert run(src).value == 1

    def test_out_of_section_device_access_crashes(self):
        src = """
int main(){
  int i, a[10];
  for(i=0;i<10;i++) a[i] = 0;
  #pragma acc parallel loop copy(a[2:4])
  for(i=0;i<10;i++) a[i] = 1;
  return 1;
}
"""
        with pytest.raises(AccRuntimeError):
            run(src)

    def test_fortran_section_with_declared_bounds(self):
        src = """
program corner
  implicit none
  integer :: i, err
  integer :: a(0:9)
  err = 0
  do i = 0, 9
    a(i) = i
  end do
  !$acc parallel loop copy(a(0:9))
  do i = 0, 9
    a(i) = a(i) * 2
  end do
  !$acc end parallel loop
  do i = 0, 9
    if (a(i) /= 2*i) err = err + 1
  end do
  if (err == 0) main = 1
end program corner
"""
        assert run(src, "fortran").value == 1


class TestRepeatedAndNestedRegions:
    def test_many_sequential_regions_share_data_region(self):
        src = """
int main(){
  int i, r, a[8];
  for(i=0;i<8;i++) a[i] = 0;
  #pragma acc data copy(a[0:8])
  {
    for(r=0;r<5;r++){
      #pragma acc parallel loop present(a[0:8])
      for(i=0;i<8;i++) a[i]++;
    }
  }
  return a[0] == 5;
}
"""
        assert run(src).value == 1

    def test_deeply_nested_data_regions(self):
        src = """
int main(){
  int i, a[4];
  for(i=0;i<4;i++) a[i] = 1;
  #pragma acc data copy(a[0:4])
  {
    #pragma acc data present(a[0:4])
    {
      #pragma acc data present(a[0:4])
      {
        #pragma acc parallel loop present(a[0:4])
        for(i=0;i<4;i++) a[i] += 10;
      }
    }
  }
  return a[0] == 11;
}
"""
        assert run(src).value == 1

    def test_region_after_shutdown_reinit(self):
        src = """
int main(){
  int i, a[4];
  for(i=0;i<4;i++) a[i] = 0;
  #pragma acc parallel loop copy(a[0:4])
  for(i=0;i<4;i++) a[i] = 1;
  acc_shutdown(acc_device_not_host);
  acc_init(acc_device_not_host);
  #pragma acc parallel loop copy(a[0:4])
  for(i=0;i<4;i++) a[i] += 1;
  return a[0] == 2;
}
"""
        assert run(src).value == 1

    def test_present_after_owner_exits_crashes(self):
        src = """
int main(){
  int i, a[4];
  #pragma acc data copyin(a[0:4])
  { }
  #pragma acc parallel loop present(a[0:4])
  for(i=0;i<4;i++) a[i] = 1;
  return 1;
}
"""
        with pytest.raises(PresentError):
            run(src)


class TestDegenerateClauseValues:
    def test_num_gangs_one(self):
        src = """
int main(){
  int g = 0;
  #pragma acc parallel num_gangs(1) reduction(+:g)
  { g++; }
  return g == 1;
}
"""
        assert run(src).value == 1

    def test_collapse_one_is_identity(self):
        src = """
int main(){
  int i, a[6];
  for(i=0;i<6;i++) a[i] = 0;
  #pragma acc parallel loop collapse(1) copy(a[0:6])
  for(i=0;i<6;i++) a[i]++;
  return a[5] == 1;
}
"""
        assert run(src).value == 1

    def test_async_same_tag_ordering(self):
        """Two activities on one queue execute in submission order."""
        src = """
int main(){
  int i, a[4];
  for(i=0;i<4;i++) a[i] = 1;
  #pragma acc data copy(a[0:4])
  {
    #pragma acc parallel loop present(a[0:4]) async(5)
    for(i=0;i<4;i++) a[i] = a[i] + 1;
    #pragma acc parallel loop present(a[0:4]) async(5)
    for(i=0;i<4;i++) a[i] = a[i] * 10;
    #pragma acc wait(5)
  }
  return a[0] == 20;
}
"""
        assert run(src).value == 1

    def test_wait_on_unused_tag_is_noop(self):
        src = """
int main(){
  #pragma acc wait(1234)
  return 1;
}
"""
        assert run(src).value == 1

    def test_negative_loop_bound_runs_zero_times(self):
        src = """
int main(){
  int i, hits = 0;
  #pragma acc parallel loop copy(hits)
  for(i=0;i<-5;i++) hits++;
  return hits == 0;
}
"""
        assert run(src).value == 1


class TestScalarCornerCases:
    def test_reduction_var_also_in_copy_clause(self):
        src = """
int main(){
  int s = 3;
  #pragma acc parallel num_gangs(4) copy(s) reduction(+:s)
  { s += 1; }
  return s == 7;
}
"""
        assert run(src).value == 1

    def test_float_scalar_copy(self):
        src = """
int main(){
  double x = 1.5;
  #pragma acc kernels copy(x)
  { x = x * 2.0; }
  return x == 3.0;
}
"""
        assert run(src).value == 1

    def test_update_scalar(self):
        src = """
int main(){
  int flag = 0, seen = -1;
  #pragma acc data copyin(flag)
  {
    #pragma acc parallel present(flag)
    { flag = 9; }
    #pragma acc update host(flag)
    seen = flag;
  }
  return seen == 9;
}
"""
        assert run(src).value == 1
