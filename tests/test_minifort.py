"""Tests for the mini-Fortran frontend."""

import pytest

from repro.frontend.errors import LexError, ParseError
from repro.frontend.tokens import TokenKind
from repro.ir import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Assign,
    Binary,
    Call,
    DeclStmt,
    For,
    Ident,
    If,
    Index,
    IntLit,
    Return,
    Unary,
    While,
    walk,
)
from repro.minifort import parse_expression_text, parse_program, tokenize


class TestLexer:
    def test_case_insensitive_keywords(self):
        toks = tokenize("PROGRAM Foo\nEND Program foo")
        assert toks[0].is_keyword("program")
        assert toks[1].is_ident("foo")

    def test_dot_operators(self):
        toks = tokenize("a .and. b .eq. c")
        texts = [t.text for t in toks if t.kind is TokenKind.OP]
        assert texts == [".and.", ".eq."]

    def test_logical_literals(self):
        toks = tokenize(".true. .false.")
        assert toks[0].value == 1 and toks[1].value == 0

    def test_double_exponent(self):
        toks = tokenize("1.5d3 2.0e-2 7")
        value, single = toks[0].value
        assert value == 1500.0 and single is False  # d => double
        value, single = toks[1].value
        assert value == pytest.approx(0.02) and single is True
        assert toks[2].value == 7

    def test_comment_to_eol(self):
        toks = tokenize("x = 1 ! a comment\ny = 2")
        texts = [t.text for t in toks if t.kind is TokenKind.IDENT]
        assert texts == ["x", "y"]

    def test_acc_sentinel_not_comment(self):
        toks = tokenize("!$acc parallel num_gangs(4)\nx = 1")
        assert toks[0].kind is TokenKind.PRAGMA
        assert toks[0].text.startswith("parallel")

    def test_acc_continuation(self):
        src = "!$acc parallel copy(a) &\n!$acc&  num_gangs(2)\nx = 1\n"
        toks = tokenize(src)
        assert "num_gangs(2)" in toks[0].text

    def test_code_continuation(self):
        toks = tokenize("x = 1 + &\n    2\n")
        values = [t.value for t in toks if t.kind is TokenKind.INT]
        assert values == [1, 2]

    def test_semicolon_separates(self):
        toks = tokenize("x = 1; y = 2")
        newlines = [t for t in toks if t.kind is TokenKind.NEWLINE]
        assert len(newlines) >= 2

    def test_string_doubling(self):
        toks = tokenize("s = 'it''s'")
        literal = next(t for t in toks if t.kind is TokenKind.STRING)
        assert literal.value == "it's"


class TestExpressions:
    def test_comparison_spellings(self):
        for text in ("a .lt. b", "a < b"):
            e = parse_expression_text(text)
            assert isinstance(e, Binary) and e.op == "<"

    def test_logical_mapping(self):
        e = parse_expression_text("a .and. b .or. c")
        assert e.op == "||" and e.left.op == "&&"

    def test_power_right_assoc(self):
        e = parse_expression_text("2 ** 3 ** 2")
        assert e.op == "**"
        assert isinstance(e.right, Binary) and e.right.op == "**"

    def test_not(self):
        e = parse_expression_text(".not. a")
        assert isinstance(e, Unary) and e.op == "!"

    def test_unary_minus(self):
        e = parse_expression_text("-a + b")
        assert e.op == "+" and isinstance(e.left, Unary)


def _parse(src: str):
    return parse_program(src)


class TestUnits:
    def test_program_becomes_main(self):
        prog = _parse("program t\nmain = 1\nend program t\n")
        assert prog.main.name == "main"
        assert prog.language == "fortran"
        # implicit declaration of `main` and trailing return
        assert isinstance(prog.main.body.stmts[0], DeclStmt)
        assert isinstance(prog.main.body.stmts[-1], Return)

    def test_function_result_convention(self):
        prog = _parse(
            "integer function twice(x)\n  integer :: x\n  twice = 2 * x\nend function twice\n"
        )
        fn = prog.function("twice")
        assert fn.params[0].name == "x"
        assert isinstance(fn.body.stmts[-1], Return)

    def test_subroutine(self):
        prog = _parse(
            "subroutine s(a, n)\n  integer :: n\n  integer :: a(n)\n  a(1) = n\nend subroutine s\n"
        )
        fn = prog.function("s")
        assert fn.params[1].name == "n"
        assert fn.params[0].is_array

    def test_multiple_units(self):
        prog = _parse(
            "program p\ncall s()\nend program p\n\nsubroutine s()\nend subroutine s\n"
        )
        assert [f.name for f in prog.functions] == ["main", "s"]


class TestStatements:
    def test_do_loop_inclusive(self):
        prog = _parse("program t\ninteger :: i, s\ns = 0\ndo i = 1, 10\ns = s + i\nend do\nend program t\n")
        loop = next(s for s in walk(prog.main) if isinstance(s, For))
        assert loop.inclusive and loop.var == "i"

    def test_do_loop_step(self):
        prog = _parse("program t\ninteger :: i\ndo i = 10, 1, -2\nend do\nend program t\n")
        loop = next(s for s in walk(prog.main) if isinstance(s, For))
        assert isinstance(loop.step, Unary)

    def test_do_while(self):
        prog = _parse("program t\ninteger :: x\nx = 1\ndo while (x < 5)\nx = x + 1\nend do\nend program t\n")
        assert any(isinstance(s, While) for s in walk(prog.main))

    def test_if_elseif_else(self):
        src = """
program t
  integer :: a, r
  a = 2
  if (a == 1) then
    r = 1
  else if (a == 2) then
    r = 2
  else
    r = 3
  end if
  main = r
end program t
"""
        prog = _parse(src)
        conditionals = [s for s in walk(prog.main) if isinstance(s, If)]
        assert len(conditionals) == 2

    def test_one_line_if(self):
        prog = _parse("program t\ninteger :: a\na = 0\nif (a == 0) a = 5\nend program t\n")
        assert any(isinstance(s, If) for s in walk(prog.main))

    def test_array_decl_bounds(self):
        prog = _parse("program t\ninteger :: a(10), b(0:9)\nend program t\n")
        decl = next(s for s in walk(prog.main) if isinstance(s, DeclStmt) and len(s.decls) == 2)
        a, b = decl.decls
        assert a.lowers == [None]
        assert b.lowers[0].value == 0

    def test_dimension_attribute(self):
        prog = _parse("program t\ninteger, dimension(5) :: v\nv(1) = 2\nend program t\n")
        assigns = [s for s in walk(prog.main) if isinstance(s, Assign)]
        assert any(isinstance(s.target, Index) for s in assigns)

    def test_array_vs_call_disambiguation(self):
        prog = _parse(
            "program t\ninteger :: a(5), x\na(2) = 1\nx = a(2) + foo(2)\nend program t\n"
        )
        exprs = [n for n in walk(prog.main)]
        assert any(isinstance(n, Index) for n in exprs)
        assert any(isinstance(n, Call) and n.name == "foo" for n in exprs)

    def test_exit_cycle(self):
        src = "program t\ninteger :: i\ndo i = 1, 10\nif (i == 5) exit\nif (i == 2) cycle\nend do\nend program t\n"
        prog = _parse(src)
        from repro.ir import Break, Continue
        assert any(isinstance(s, Break) for s in walk(prog.main))
        assert any(isinstance(s, Continue) for s in walk(prog.main))

    def test_implicit_none_skipped(self):
        prog = _parse("program t\nimplicit none\ninteger :: x\nend program t\n")
        assert prog.main is not None

    def test_missing_end_raises(self):
        with pytest.raises(ParseError):
            _parse("program t\ninteger :: x\n")


class TestPragmas:
    def test_region_with_end(self):
        src = """
program t
  integer :: a
  a = 0
  !$acc parallel copy(a)
  a = 1
  !$acc end parallel
end program t
"""
        prog = _parse(src)
        constructs = [s for s in walk(prog.main) if isinstance(s, AccConstruct)]
        assert len(constructs) == 1

    def test_missing_end_directive_raises(self):
        src = "program t\ninteger :: a\n!$acc parallel\na = 1\nend program t\n"
        with pytest.raises(ParseError):
            _parse(src)

    def test_mismatched_end_raises(self):
        src = ("program t\ninteger :: a\n!$acc parallel\na = 1\n"
               "!$acc end kernels\nend program t\n")
        with pytest.raises(ParseError):
            _parse(src)

    def test_loop_binds_to_do(self):
        src = """
program t
  integer :: i, a(5)
  !$acc parallel copy(a(1:5))
  !$acc loop
  do i = 1, 5
    a(i) = i
  end do
  !$acc end parallel
end program t
"""
        prog = _parse(src)
        loops = [s for s in walk(prog.main) if isinstance(s, AccLoop)]
        assert len(loops) == 1

    def test_fortran_sections_normalised(self):
        src = """
program t
  integer :: a(10)
  !$acc data copy(a(2:7))
  !$acc end data
end program t
"""
        prog = _parse(src)
        construct = next(s for s in walk(prog.main) if isinstance(s, AccConstruct))
        section = construct.directive.clause("copy").refs[0].sections[0]
        assert section.start.value == 2
        # length is hi - lo + 1 as an expression tree
        assert isinstance(section.length, Binary)

    def test_combined_optional_end(self):
        src = """
program t
  integer :: i, a(5)
  !$acc parallel loop copy(a(1:5))
  do i = 1, 5
    a(i) = i
  end do
  !$acc end parallel loop
end program t
"""
        prog = _parse(src)
        loops = [s for s in walk(prog.main) if isinstance(s, AccLoop)]
        assert loops[0].directive.kind == "parallel loop"

    def test_standalone_update(self):
        src = """
program t
  integer :: a(5)
  !$acc update host(a(1:5))
end program t
"""
        prog = _parse(src)
        assert any(isinstance(s, AccStandalone) for s in walk(prog.main))

    def test_fortran_reduction_spellings(self):
        src = """
program t
  integer :: i, v
  v = 1
  !$acc parallel loop reduction(iand:v)
  do i = 1, 5
    v = iand(v, i)
  end do
  !$acc end parallel loop
end program t
"""
        prog = _parse(src)
        loop = next(s for s in walk(prog.main) if isinstance(s, AccLoop))
        assert loop.directive.clause("reduction").op == "iand"
