"""Tests for :mod:`repro.sched`: scheduler backends and the sharded
journal.

The central property, inherited from the engine layer: every backend —
``local`` (policy engines), ``shards`` (work stealing), ``simk8s`` (the
simulated k8s control plane) — renders *byte-identical* reports for the
same configuration, because template order and per-iteration seeds
derive from the config and never from scheduling.  On top of that each
backend owns distinct failure semantics: shards respawn dead workers
and fall back to serial execution, the simk8s controller degrades a job
that keeps failing to a HARNESS_ERROR row instead of hanging.
"""

from __future__ import annotations

import pytest

from repro.compiler import CompilerBehavior
from repro.faults import FaultPlan
from repro.harness import (
    HarnessConfig,
    ValidationRunner,
    render_csv,
    render_text,
)
from repro.harness.engine import CancelToken, CampaignInterrupted
from repro.harness.runner import FailureKind
from repro.journal import JournalCorruptError, JournalError
from repro.sched import (
    SCHEDULERS,
    JobSpec,
    LocalBackend,
    ShardedJournal,
    ShardsBackend,
    ShardsEngine,
    SimK8sBackend,
    SimK8sCluster,
    SimK8sEngine,
    create_backend,
)
from repro.sched.shards import route_unit, segment_path
from repro.sched.simk8s import POD_FAILED, POD_SUCCEEDED
from repro.suite import openacc10_suite

#: a behaviour exercising passes, wrong values and compile errors at once
_BUGGY = CompilerBehavior(
    name="buggy", version="x",
    broken_reductions=frozenset({"+"}),
    unsupported_directives=frozenset({"declare"}),
)


def _config(**kwargs) -> HarnessConfig:
    defaults = dict(iterations=2, languages=("c",),
                    feature_prefixes=["loop", "declare", "parallel"])
    defaults.update(kwargs)
    return HarnessConfig(**defaults)


def _backend_report(backend, config, **kwargs):
    return backend.run(_BUGGY, config, openacc10_suite(), **kwargs)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_backends_registered(self):
        assert SCHEDULERS == ("local", "shards", "simk8s")

    def test_create_backend_types(self):
        assert isinstance(create_backend("local"), LocalBackend)
        assert isinstance(create_backend("shards", workers=3), ShardsBackend)
        assert isinstance(create_backend("simk8s", workers=3), SimK8sBackend)

    def test_create_backend_workers_mapping(self):
        assert create_backend("shards", workers=5).shards == 5
        assert create_backend("simk8s", workers=5).pods == 5

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler backend"):
            create_backend("slurm")

    def test_local_defers_pool_shape_to_config(self):
        engine = LocalBackend().engine(_config(policy="thread", workers=3))
        assert engine.policy == "thread" and engine.workers == 3

    def test_bad_pool_shapes_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ShardsEngine(shards=0)
        with pytest.raises(ValueError, match="pods"):
            SimK8sCluster(0, lambda: None)


# ---------------------------------------------------------------------------
# cross-backend determinism (satellite: byte-identical reports)
# ---------------------------------------------------------------------------


class TestCrossBackendIdentical:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return ValidationRunner(_BUGGY, _config()).run_suite(
            openacc10_suite()
        )

    @pytest.mark.parametrize("name,workers", [
        ("local", None), ("shards", 3), ("simk8s", 3),
    ])
    def test_reports_byte_identical(self, serial_report, name, workers):
        backend = create_backend(name, workers=workers)
        report = _backend_report(backend, _config())
        assert render_csv(report) == render_csv(serial_report)
        assert render_text(report) == render_text(serial_report)

    def test_cancelling_one_campaign_leaves_another_untouched(
            self, serial_report):
        # per-campaign tokens: a cancelled campaign's neighbour, running
        # on the same backend type, renders byte-identical regardless
        doomed = CancelToken()
        doomed.cancel("test")
        backend = create_backend("shards", workers=2)
        with pytest.raises(CampaignInterrupted):
            _backend_report(backend, _config(), cancel=doomed)
        report = _backend_report(backend, _config(), cancel=CancelToken())
        assert render_csv(report) == render_csv(serial_report)


# ---------------------------------------------------------------------------
# shards: respawn, serial fallback, persistent faults
# ---------------------------------------------------------------------------


class TestShards:
    def test_shard_death_respawn_heals_byte_identical(self):
        # transient worker faults kill shard threads mid-campaign; the
        # respawned shards (bumped attempt) finish the suite and the
        # report matches a clean serial run exactly
        clean = ValidationRunner(_BUGGY, _config()).run_suite(
            openacc10_suite()
        )
        faulty = _config(
            fault_plan=FaultPlan.parse("worker=0.5,seed=7"), retries=2
        )
        report = _backend_report(ShardsBackend(shards=3), faulty)
        assert render_csv(report) == render_csv(clean)

    def test_persistent_iteration_faults_degrade_not_hang(self):
        # a unit whose every attempt crashes must exhaust its retry
        # budget and land as a HARNESS_ERROR row — the campaign completes
        config = _config(
            feature_prefixes=["loop.collapse"],
            fault_plan=FaultPlan.parse("iteration=1.0,persistent,seed=3"),
            retries=1,
        )
        report = _backend_report(ShardsBackend(shards=2), config)
        kinds = report.by_failure_kind()
        assert kinds.get(FailureKind.HARNESS_ERROR)
        assert len(report.results) == len(report.failures())

    def test_persistent_worker_faults_complete_via_serial_fallback(self):
        # every shard attempt dies -> the death budget trips and the
        # coordinator runs the remainder serially (where worker faults
        # cannot fire), so the campaign still completes with clean rows
        clean = ValidationRunner(_BUGGY, _config()).run_suite(
            openacc10_suite()
        )
        config = _config(
            fault_plan=FaultPlan.parse("worker=1.0,persistent,seed=5")
        )
        report = _backend_report(ShardsBackend(shards=2), config)
        assert render_csv(report) == render_csv(clean)


# ---------------------------------------------------------------------------
# simk8s: the control plane
# ---------------------------------------------------------------------------


class TestSimK8s:
    def test_pod_failure_degrades_to_harness_error_not_hang(self):
        # a controller cannot run work "in the parent" on a remote node:
        # once a job exceeds max_pod_failures the unit degrades to a
        # HARNESS_ERROR row carrying the pod's last log line
        config = _config(
            feature_prefixes=["loop.collapse"],
            fault_plan=FaultPlan.parse("worker=1.0,persistent,seed=5"),
        )
        report = _backend_report(SimK8sBackend(pods=2), config)
        kinds = report.by_failure_kind()
        assert kinds.get(FailureKind.HARNESS_ERROR) == len(report.results)
        details = [r.functional.harness_error for r in report.results
                   if r.functional is not None]
        assert any("injected worker fault" in (d or "") for d in details)

    def test_transient_pod_failures_heal_byte_identical(self):
        clean = ValidationRunner(_BUGGY, _config()).run_suite(
            openacc10_suite()
        )
        config = _config(
            fault_plan=FaultPlan.parse("worker=0.5,seed=7"), retries=2
        )
        report = _backend_report(SimK8sBackend(pods=3), config)
        assert render_csv(report) == render_csv(clean)

    def test_cancelled_token_interrupts_promptly(self):
        token = CancelToken()
        token.cancel("test")
        with pytest.raises(CampaignInterrupted):
            _backend_report(SimK8sBackend(pods=2), _config(), cancel=token)

    def test_cluster_api_lifecycle(self):
        # drive the cluster directly: submission, phase transitions, log
        # collection, duplicate rejection, deletion
        runner = ValidationRunner(_BUGGY, _config())
        engine = SimK8sEngine(pods=1)
        cluster = SimK8sCluster(
            1, engine._pod_runner_factory(runner, CancelToken())
        )
        suite = [t for t in openacc10_suite()
                 if t.language == "c"][:1]
        spec = JobSpec(name="repro-job0000-a0", index=0, template=suite[0])
        cluster.submit(spec)
        with pytest.raises(ValueError, match="already exists"):
            cluster.submit(JobSpec(name="repro-job0000-a0", index=0,
                                   template=suite[0]))
        try:
            for _ in range(2000):
                phase = cluster.poll()["repro-job0000-a0"]
                if phase in (POD_SUCCEEDED, POD_FAILED):
                    break
            assert phase == POD_SUCCEEDED
            logs = cluster.logs("repro-job0000-a0")
            assert "created" in logs and "completed" in logs
            assert cluster.result("repro-job0000-a0") is not None
            assert cluster.worker("repro-job0000-a0").startswith("pod-")
            cluster.delete("repro-job0000-a0")
            assert "repro-job0000-a0" not in cluster.poll()
        finally:
            cluster.shutdown()


# ---------------------------------------------------------------------------
# the sharded journal
# ---------------------------------------------------------------------------


_CAMPAIGN = {"format": "repro.journal/v1", "command": "test",
             "code_version": "x"}


class TestShardedJournal:
    def test_append_routes_by_stable_hash(self, tmp_path):
        base = str(tmp_path / "c.journal")
        journal = ShardedJournal.create(base, dict(_CAMPAIGN), shards=3)
        units = [f"feature.{i}:c" for i in range(12)]
        for unit in units:
            journal.append(unit, {"unit": unit})
        for unit in units:
            segment = journal.writers[route_unit(unit, 3)]
            assert segment.get(unit) == {"unit": unit}
        assert set(journal.records) == set(units)
        journal.close()

    def test_get_scans_all_segments_on_route_miss(self, tmp_path):
        base = str(tmp_path / "c.journal")
        journal = ShardedJournal.create(base, dict(_CAMPAIGN), shards=2)
        # plant a record in the "wrong" segment, as a resume with a
        # different shard count would
        unit = "loop.gang:c"
        wrong = (route_unit(unit, 2) + 1) % 2
        journal.writers[wrong].append(unit, {"unit": unit})
        assert journal.get(unit) == {"unit": unit}
        assert journal.get("no.such:c") is None
        journal.close()

    def test_resume_roundtrip(self, tmp_path):
        base = str(tmp_path / "c.journal")
        journal = ShardedJournal.create(base, dict(_CAMPAIGN), shards=2)
        journal.append("a:c", {"unit": "a:c"})
        journal.append("b:c", {"unit": "b:c"})
        journal.close()
        resumed = ShardedJournal.resume(base, dict(_CAMPAIGN))
        assert set(resumed.records) == {"a:c", "b:c"}
        assert len(resumed.writers) == 2
        resumed.close()

    def test_resume_without_segments_fails_loudly(self, tmp_path):
        with pytest.raises(JournalError, match="no journal segments"):
            ShardedJournal.resume(str(tmp_path / "nope.journal"),
                                  dict(_CAMPAIGN))

    def test_resume_rejects_campaign_mismatch(self, tmp_path):
        base = str(tmp_path / "c.journal")
        ShardedJournal.create(base, dict(_CAMPAIGN), shards=1).close()
        other = dict(_CAMPAIGN, command="different")
        with pytest.raises(JournalError):
            ShardedJournal.resume(base, other)

    def test_segment_paths(self):
        assert segment_path("/x/c.journal", 2) == "/x/c.journal.shard2"

    def test_backend_campaign_resumes_from_sharded_journal(self, tmp_path):
        # end to end: a drained shard campaign resumes byte-identical
        from repro.journal import validate_campaign_key

        config = _config()
        campaign = validate_campaign_key("1.0", _BUGGY, config)
        base = str(tmp_path / "c.journal")
        journal = ShardedJournal.create(base, campaign, shards=2)
        clean = _backend_report(ShardsBackend(shards=2), config,
                                journal=journal)
        journal.close()
        resumed_journal = ShardedJournal.resume(base, campaign)
        resumed = _backend_report(ShardsBackend(shards=2), config,
                                  journal=resumed_journal)
        resumed_journal.close()
        assert render_csv(resumed) == render_csv(clean)


class TestCorruptedSegment:
    def test_resume_names_corrupt_segment_fsck_salvages_the_rest(
            self, tmp_path):
        from repro.journal import fsck_journal

        base = str(tmp_path / "c.journal")
        journal = ShardedJournal.create(base, dict(_CAMPAIGN), shards=2)
        units = [f"feature.{i}:c" for i in range(8)]
        for unit in units:
            journal.append(unit, {"unit": unit})
        journal.close()
        by_shard = {0: [], 1: []}
        for unit in units:
            by_shard[route_unit(unit, 2)].append(unit)
        assert len(by_shard[0]) >= 2 and len(by_shard[1]) >= 2
        # corrupt shard0 mid-file: tamper the first unit record while
        # intact records remain after it — NOT a torn tail, so the strict
        # loader must refuse the segment by name
        victim = segment_path(base, 0)
        with open(victim, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        tampered = by_shard[0][0].encode()
        lines[1] = lines[1].replace(tampered, tampered.upper())
        with open(victim, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(JournalCorruptError, match="shard0"):
            ShardedJournal.resume(base, dict(_CAMPAIGN))
        # fsck reports the damage without raising, and still counts the
        # salvageable prefix of every other segment
        report = fsck_journal(base)
        assert not report.resumable
        verdicts = {f.path: f.status for f in report.files}
        assert verdicts[victim] == "corrupt"
        assert verdicts[segment_path(base, 1)] == "ok"
        salvage = set(report.salvageable_units())
        assert salvage == set(by_shard[1])
