"""Tests for the compile pipeline: validation diagnostics, version gating,
vendor compile-time restrictions."""

import pytest

from repro.compiler import (
    CompileError,
    Compiler,
    CompilerBehavior,
    UnsupportedFeatureError,
)
from repro.spec.versions import ACC_20


CC = Compiler()
CC20 = Compiler(CompilerBehavior(spec_version=ACC_20))


class TestBasicValidation:
    def test_clean_program_compiles(self):
        prog = CC.compile("int main(){ return 1; }", "c")
        assert prog.run().value == 1

    def test_syntax_error_is_compile_error(self):
        with pytest.raises(CompileError):
            CC.compile("int main(){ int a = ; }", "c")

    def test_invalid_clause_placement(self):
        src = "int main(){\n#pragma acc data num_gangs(4)\n{ }\nreturn 1; }"
        with pytest.raises(CompileError):
            CC.compile(src, "c")

    def test_unknown_runtime_routine(self):
        src = "int main(){ return acc_fly_to_moon(); }"
        with pytest.raises(CompileError):
            CC.compile(src, "c")

    def test_unknown_function_in_region(self):
        src = """
int main(){
  int t = 0;
  #pragma acc parallel copy(t)
  { t = mystery(); }
  return t;
}
"""
        with pytest.raises(CompileError):
            CC.compile(src, "c")

    def test_user_call_in_region_rejected_in_10(self):
        """OpenACC 1.0 has no routine directive (Section V-C)."""
        src = """
int helper(int x){ return x; }
int main(){
  int t = 0;
  #pragma acc parallel copy(t)
  { t = helper(1); }
  return t;
}
"""
        with pytest.raises(UnsupportedFeatureError):
            CC.compile(src, "c")

    def test_user_call_on_host_is_fine(self):
        src = """
int helper(int x){ return x + 1; }
int main(){ return helper(0); }
"""
        assert CC.compile(src, "c").run().value == 1

    def test_reduction_without_operator_unparseable(self):
        src = "int main(){ int s=0;\n#pragma acc parallel reduction(s)\n{ }\nreturn s; }"
        with pytest.raises(CompileError):
            CC.compile(src, "c")


class TestVersionGating:
    def test_enter_data_needs_20(self):
        src = "int main(){ int a[4];\n#pragma acc enter data copyin(a[0:4])\nreturn 1; }"
        with pytest.raises(UnsupportedFeatureError):
            CC.compile(src, "c")
        CC20.compile(src, "c")  # accepted by a 2.0 implementation

    def test_default_none_needs_20(self):
        src = """
int main(){
  int t = 0;
  #pragma acc parallel default(none) copy(t)
  { t = 1; }
  return t;
}
"""
        with pytest.raises(UnsupportedFeatureError):
            CC.compile(src, "c")
        assert CC20.compile(src, "c").run().value == 1

    def test_default_none_flags_implicit_variable(self):
        src = """
int main(){
  int t = 0, hidden = 3;
  #pragma acc parallel default(none) copy(t)
  { t = hidden; }
  return t;
}
"""
        with pytest.raises(CompileError):
            CC20.compile(src, "c")

    def test_routine_enables_device_calls(self):
        src = """
#pragma acc routine
int twice(int x){ return 2 * x; }
int main(){
  int i, b[4];
  #pragma acc parallel loop copy(b[0:4])
  for(i=0;i<4;i++) b[i] = twice(i);
  return b[3] == 6;
}
"""
        with pytest.raises(UnsupportedFeatureError):
            CC.compile(src, "c")
        assert CC20.compile(src, "c").run().value == 1


class TestVendorRestrictions:
    def test_language_gate(self):
        c_only = Compiler(CompilerBehavior(languages=("c",)))
        with pytest.raises(UnsupportedFeatureError):
            c_only.compile("program t\nend program t\n", "fortran")

    def test_constant_parallelism_restriction(self):
        caps = Compiler(CompilerBehavior(require_constant_parallelism_exprs=True))
        variable = "int main(){ int g = 4;\n#pragma acc parallel num_gangs(g)\n{ }\nreturn 1; }"
        constant = variable.replace("num_gangs(g)", "num_gangs(4)")
        with pytest.raises(CompileError):
            caps.compile(variable, "c")
        assert caps.compile(constant, "c").run().value == 1

    def test_unsupported_directive(self):
        vendor = Compiler(CompilerBehavior(unsupported_directives=frozenset({"declare"})))
        src = "int main(){ int a[4];\n#pragma acc declare create(a[0:4])\nreturn 1; }"
        with pytest.raises(UnsupportedFeatureError):
            vendor.compile(src, "c")

    def test_unsupported_clause_pair(self):
        vendor = Compiler(CompilerBehavior(
            unsupported_clauses=frozenset({("parallel", "firstprivate")})
        ))
        src = "int main(){ int t=1;\n#pragma acc parallel firstprivate(t)\n{ }\nreturn 1; }"
        with pytest.raises(UnsupportedFeatureError):
            vendor.compile(src, "c")
        # the same clause on kernels-free constructs still works elsewhere
        ok = "int main(){ int t=1;\n#pragma acc parallel private(t)\n{ }\nreturn 1; }"
        assert vendor.compile(ok, "c").run().value == 1

    def test_unsupported_routine_is_link_error(self):
        vendor = Compiler(CompilerBehavior(
            unsupported_routines=frozenset({"acc_async_test"})
        ))
        src = "int main(){ return acc_async_test(1); }"
        with pytest.raises(UnsupportedFeatureError):
            vendor.compile(src, "c")

    def test_compiled_program_reusable(self):
        prog = CC.compile("int main(){ return rand() % 2 == rand() % 2; }", "c")
        first = prog.run(rng_seed=1)
        second = prog.run(rng_seed=1)
        assert first.value == second.value
