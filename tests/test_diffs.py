"""Tests for differential version comparison (the vendor feedback loop)."""

import pytest

from repro.analysis import compare_versions
from repro.harness import HarnessConfig


class TestCompareVersions:
    def test_caps_beta_to_final_everything_fixed(self, suite10):
        diff = compare_versions("caps", "3.1.0", "3.3.4", "c", suite10)
        assert not diff.regressed
        assert not diff.still_failing
        assert len(diff.fixed) > 10
        assert diff.improved

    def test_pgi_132_regression_visible(self, suite10):
        diff = compare_versions("pgi", "12.10", "13.2", "c", suite10)
        assert "kernels.copyin" in diff.regressed
        assert not diff.improved

    def test_pgi_134_recovery(self, suite10):
        diff = compare_versions("pgi", "13.2", "13.4", "c", suite10)
        assert "kernels.copyin" in diff.fixed
        assert not diff.regressed
        # the async family persists (Section V-B)
        assert "parallel.async" in diff.still_failing

    def test_cray_no_changes(self, suite10):
        diff = compare_versions("cray", "8.1.2", "8.2.0", "c", suite10)
        assert not diff.fixed and not diff.regressed
        assert diff.still_failing  # the flat 16-bug inventory

    def test_cray_fortran_817_fix(self, suite10):
        diff = compare_versions("cray", "8.1.6", "8.1.7", "fortran", suite10)
        assert diff.fixed == ["loop.collapse"]
        assert not diff.regressed

    def test_summary_format(self, suite10):
        diff = compare_versions("caps", "3.3.3", "3.3.4", "c", suite10)
        text = diff.summary()
        assert "caps 3.3.3 -> 3.3.4 [c]" in text
        assert "0 fixed, 0 regressed" in text

    def test_cli_compare(self, capsys):
        from repro.cli import main

        code = main(["compare", "caps", "3.2.3", "3.3.3", "--language", "c"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fixed:" in out and "update.async" in out
