"""Tests for the host interpreter: expression semantics, statements,
functions, builtins, and execution limits."""

import pytest
from hypothesis import given, strategies as st

from repro.accsim.errors import AccRuntimeError, ExecutionTimeout
from repro.compiler import Compiler, ExecutionLimits


CC = Compiler()


def run_c(body: str, env_vars=None, limits=None):
    src = "int main() {\n" + body + "\n}"
    return CC.compile(src, "c").run(env_vars=env_vars, limits=limits)


def run_f(body: str, decls: str = ""):
    src = f"program t\n{decls}\n{body}\nend program t\n"
    return CC.compile(src, "fortran").run()


class TestCArithmetic:
    def test_truncating_division(self):
        assert run_c("return (7 / 2 == 3) && (-7 / 2 == -3);").value == 1

    def test_modulo_sign(self):
        assert run_c("return (-7 % 2 == -1) && (7 % -2 == 1);").value == 1

    def test_division_by_zero_crashes(self):
        with pytest.raises(AccRuntimeError):
            run_c("int z = 0; return 1 / z;")

    def test_float_division(self):
        assert run_c("double x = 7.0 / 2.0; return x == 3.5;").value == 1

    def test_shifts_and_bitops(self):
        assert run_c("return ((1 << 4) == 16) && ((255 & 15) == 15) && ((8 >> 2) == 2);").value == 1

    def test_short_circuit_and(self):
        # the RHS would crash if evaluated
        assert run_c("int z = 0; return (0 && (1 / z)) == 0;").value == 1

    def test_short_circuit_or(self):
        assert run_c("int z = 0; return (1 || (1 / z)) == 1;").value == 1

    def test_comparisons_yield_int(self):
        assert run_c("return (3 < 4) + (4 <= 4) + (5 > 4) + (3 != 3);").value == 3

    def test_conditional_expression(self):
        assert run_c("int a = 5; return a > 3 ? 10 : 20;").value == 10

    def test_assignment_coerces_to_int(self):
        assert run_c("int x; x = 7.9; return x == 7;").value == 1

    def test_cast(self):
        assert run_c("return (int)(3.99) == 3;").value == 1

    @given(st.integers(-10**6, 10**6), st.integers(1, 1000))
    def test_div_mod_identity(self, a, b):
        result = run_c(f"int a = {a}, b = {b}; return a == (a / b) * b + (a % b);")
        assert result.value == 1


class TestCStatements:
    def test_loop_accumulation(self):
        assert run_c("int i, s = 0; for(i=0;i<10;i++) s += i; return s == 45;").value == 1

    def test_descending_loop(self):
        assert run_c("int i, s = 0; for(i=9;i>=0;i--) s++; return s == 10;").value == 1

    def test_break_continue(self):
        body = """
int i, s = 0;
for(i=0;i<100;i++){
  if (i == 5) break;
  if (i % 2 == 0) continue;
  s += i;
}
return s == 4;
"""
        assert run_c(body).value == 1

    def test_while(self):
        assert run_c("int x = 1; while (x < 100) x = x * 2; return x == 128;").value == 1

    def test_nested_scopes_shadowing(self):
        body = """
int x = 1;
{
  int x = 2;
  x = 3;
}
return x == 1;
"""
        assert run_c(body).value == 1

    def test_array_fill_and_sum(self):
        body = """
int i, s = 0;
int a[10];
for(i=0;i<10;i++) a[i] = i * i;
for(i=0;i<10;i++) s += a[i];
return s == 285;
"""
        assert run_c(body).value == 1

    def test_2d_array(self):
        body = """
int i, j, s = 0;
int m[3][4];
for(i=0;i<3;i++)
  for(j=0;j<4;j++)
    m[i][j] = i * 4 + j;
s = m[2][3];
return s == 11;
"""
        assert run_c(body).value == 1

    def test_undefined_variable_crashes(self):
        with pytest.raises(AccRuntimeError):
            run_c("return nonexistent;")

    def test_step_budget_timeout(self):
        with pytest.raises(ExecutionTimeout):
            run_c("int x = 1; while (x) x = 1; return 0;",
                  limits=ExecutionLimits(max_steps=5000))


class TestCFunctions:
    def test_scalar_by_value(self):
        src = """
int bump(int x) { x = x + 1; return x; }
int main() { int a = 1; int b = bump(a); return (a == 1) && (b == 2); }
"""
        assert CC.compile(src, "c").run().value == 1

    def test_array_by_reference(self):
        src = """
void fill(int a[], int n) { int i; for(i=0;i<n;i++) a[i] = 3; }
int main() { int a[4]; fill(a, 4); return a[2] == 3; }
"""
        assert CC.compile(src, "c").run().value == 1

    def test_recursion(self):
        src = """
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main() { return fact(6) == 720; }
"""
        assert CC.compile(src, "c").run().value == 1

    def test_malloc_cast(self):
        body = """
int i;
int *p;
p = (int*)malloc(5*sizeof(int));
for(i=0;i<5;i++) p[i] = i;
free(p);
return 1;
"""
        assert run_c(body).value == 1

    def test_printf_captured(self):
        result = run_c('printf("hello", 42); return 1;')
        assert result.output and "42" in result.output[0]

    def test_rand_deterministic_per_seed(self):
        r1 = run_c("int a = rand(); int b = rand(); return a != b;")
        r2 = run_c("int a = rand(); int b = rand(); return a != b;")
        assert r1.value == 1 == r2.value

    def test_math_builtins(self):
        assert run_c("return fabs(-2.5) == 2.5 && pow(2.0, 10) == 1024.0;").value == 1


class TestFortranSemantics:
    def test_one_based_arrays(self):
        assert run_f(
            "do i = 1, 5\n  a(i) = i\nend do\nif (a(5) == 5) main = 1",
            decls="integer :: i\ninteger :: a(5)",
        ).value == 1

    def test_custom_lower_bounds(self):
        assert run_f(
            "do i = 0, 4\n  a(i) = i * 2\nend do\nif (a(0) == 0 .and. a(4) == 8) main = 1",
            decls="integer :: i\ninteger :: a(0:4)",
        ).value == 1

    def test_power_operator(self):
        assert run_f("if (2 ** 10 == 1024) main = 1").value == 1

    def test_intrinsics(self):
        body = ("if (abs(-3) == 3 .and. max(2, 7) == 7 .and. mod(10, 3) == 1 "
                ".and. merge(1, 2, .true.) == 1) main = 1")
        assert run_f(body).value == 1

    def test_scalar_by_reference(self):
        src = """
program t
  integer :: x
  x = 1
  call bump(x)
  if (x == 2) main = 1
end program t

subroutine bump(y)
  integer :: y
  y = y + 1
end subroutine bump
"""
        assert CC.compile(src, "fortran").run().value == 1

    def test_array_by_reference(self):
        src = """
program t
  integer :: a(4), i
  do i = 1, 4
    a(i) = 0
  end do
  call fill(a, 4)
  if (a(3) == 9) main = 1
end program t

subroutine fill(a, n)
  integer :: n, i
  integer :: a(n)
  do i = 1, n
    a(i) = 9
  end do
end subroutine fill
"""
        assert CC.compile(src, "fortran").run().value == 1

    def test_function_return(self):
        src = """
program t
  integer :: r
  r = twice(21)
  if (r == 42) main = 1
end program t

integer function twice(x)
  integer :: x
  twice = 2 * x
end function twice
"""
        assert CC.compile(src, "fortran").run().value == 1

    def test_do_loop_negative_step(self):
        assert run_f(
            "s = 0\ndo i = 10, 2, -2\n  s = s + i\nend do\nif (s == 30) main = 1",
            decls="integer :: i, s",
        ).value == 1

    def test_integer_division_truncates(self):
        assert run_f("if (7 / 2 == 3 .and. (-7) / 2 == -3) main = 1").value == 1


class TestDeterminism:
    def test_same_seed_same_result(self):
        src = "int main(){ return rand(); }"
        prog = CC.compile(src, "c")
        a = prog.run(rng_seed=7).value
        b = prog.run(rng_seed=7).value
        c = prog.run(rng_seed=8).value
        assert a == b
        assert a != c

    def test_runs_are_isolated(self):
        """Each run gets a fresh machine: device state cannot leak."""
        src = """
int main(){
  int a[4], i;
  for(i=0;i<4;i++) a[i] = 0;
  #pragma acc data copyin(a[0:4])
  { }
  return 1;
}
"""
        prog = CC.compile(src, "c")
        assert prog.run().value == 1
        assert prog.run().value == 1
