"""Focused tests for the shared directive/clause parser across both
surface syntaxes."""

import pytest

from repro.frontend.errors import ParseError
from repro.ir import Binary, IntLit, walk
from repro.ir.acc import normalize_clause_name


def c_directive(text: str):
    from repro.frontend.directives import DirectiveParser
    from repro.frontend.tokens import TokenStream
    from repro.minic.lexer import tokenize
    from repro.minic.parser import CParser

    parser = CParser(tokenize("int main(){return 0;}"))
    ts = TokenStream(tokenize(text))
    return parser._directive_parser.parse(ts, source=text)


def f_directive(text: str):
    from repro.frontend.tokens import TokenKind, TokenStream
    from repro.minifort.lexer import tokenize
    from repro.minifort.parser import FortranParser

    parser = FortranParser(tokenize("program t\nend program t\n"))
    toks = [t for t in tokenize(text) if t.kind is not TokenKind.NEWLINE]
    return parser._directive_parser.parse(TokenStream(toks), source=text)


class TestKinds:
    def test_multiword_kinds(self):
        assert c_directive("parallel loop").kind == "parallel loop"
        assert c_directive("kernels loop").kind == "kernels loop"
        assert c_directive("enter data copyin(a[0:4])").kind == "enter data"

    def test_single_kinds(self):
        for kind in ("parallel", "kernels", "data", "host_data", "loop",
                     "declare", "update"):
            assert c_directive(kind).kind == kind

    def test_unknown_kind_raises(self):
        with pytest.raises(ParseError):
            c_directive("warp_speed")


class TestClauseForms:
    def test_bare_wait(self):
        d = c_directive("wait")
        assert d.kind == "wait" and not d.clauses

    def test_wait_with_tag(self):
        d = c_directive("wait(7)")
        assert d.clause("wait").expr.value == 7

    def test_cache_argument(self):
        d = c_directive("cache(a[0:16])")
        ref = d.clause("cache").refs[0]
        assert ref.name == "a" and ref.sections[0].length.value == 16

    def test_async_bare_and_with_expr(self):
        assert c_directive("parallel async").clause("async").expr is None
        assert c_directive("parallel async(t)").clause("async").expr is not None

    def test_gang_with_count(self):
        d = c_directive("loop gang(4)")
        assert d.clause("gang").expr.value == 4

    def test_multiple_refs_and_clauses(self):
        d = c_directive("parallel copy(a[0:4], b[0:4]) copyin(c[0:4]) if(x)")
        assert d.clause("copy").var_names == ["a", "b"]
        assert d.clause("copyin").var_names == ["c"]
        assert d.clause("if") is not None

    def test_comma_separated_clauses(self):
        # Fortran style allows commas between clauses
        d = f_directive("parallel copy(a(1:4)), num_gangs(2)")
        assert d.clause("copy") is not None
        assert d.clause("num_gangs") is not None

    def test_reduction_operator_forms(self):
        for op in ("+", "*", "max", "min", "&&", "||", "&", "|", "^"):
            d = c_directive(f"loop reduction({op}:s)")
            assert d.clause("reduction").op == op

    def test_fortran_reduction_spellings(self):
        for op in (".and.", ".or.", "iand", "ior", "ieor", "max"):
            d = f_directive(f"loop reduction({op}:s)")
            assert d.clause("reduction").op == op

    def test_default_clause(self):
        d = c_directive("parallel default(none)")
        assert d.clause("default").op == "none"

    def test_unknown_clause_raises(self):
        with pytest.raises(ParseError):
            c_directive("parallel sideways(3)")


class TestSections:
    def test_c_start_length(self):
        d = c_directive("data copy(a[3:9])")
        section = d.clause("copy").refs[0].sections[0]
        assert section.start.value == 3 and section.length.value == 9

    def test_c_multidim_sections(self):
        d = c_directive("data copy(m[0:4][0:8])")
        assert len(d.clause("copy").refs[0].sections) == 2

    def test_fortran_lo_hi_normalised(self):
        d = f_directive("data copy(a(2:7))")
        section = d.clause("copy").refs[0].sections[0]
        assert section.start.value == 2
        # length is built as (7 - 2) + 1
        assert isinstance(section.length, Binary)

    def test_fortran_single_element(self):
        d = f_directive("data copy(a(5))")
        section = d.clause("copy").refs[0].sections[0]
        assert section.start.value == 5
        assert section.length.value == 1

    def test_bare_scalar_ref(self):
        d = c_directive("data copy(flag)")
        assert not d.clause("copy").refs[0].sections


class TestAliases:
    def test_pcopy_family(self):
        assert normalize_clause_name("pcopy") == "present_or_copy"
        assert normalize_clause_name("pcopyin") == "present_or_copyin"
        assert normalize_clause_name("pcopyout") == "present_or_copyout"
        assert normalize_clause_name("pcreate") == "present_or_create"

    def test_update_self_alias(self):
        d = c_directive("update self(a[0:4])")
        assert d.clause("host") is not None

    def test_without_clause_helper(self):
        d = c_directive("parallel copy(a[0:4]) async(1)")
        stripped = d.without_clause("async")
        assert stripped.clause("async") is None
        assert stripped.clause("copy") is not None
        # the original is untouched
        assert d.clause("async") is not None


class TestDuplicateScalarClauses:
    """A single-valued clause appearing twice is rejected at parse time
    (`num_gangs(2) num_gangs(4)` is ambiguous, not additive)."""

    def test_duplicate_num_gangs_rejected(self):
        with pytest.raises(ParseError, match="duplicate clause 'num_gangs'"):
            c_directive("parallel num_gangs(2) num_gangs(4)")

    def test_duplicate_if_rejected_fortran(self):
        with pytest.raises(ParseError, match="duplicate clause 'if'"):
            f_directive("parallel if(1) if(0)")

    def test_error_carries_clause_location(self):
        with pytest.raises(ParseError) as err:
            c_directive("parallel num_gangs(2) num_gangs(4)")
        # the error points at the *second* occurrence
        assert err.value.loc.column == len("parallel num_gangs(2) ") + 1

    def test_repeated_wait_args_still_allowed(self):
        # multiple wait arguments name multiple queues; not single-valued
        d = c_directive("parallel async(1) wait(2) wait(3)")
        assert len(d.clauses_named("wait")) == 2

    def test_distinct_scalar_clauses_fine(self):
        d = c_directive("parallel num_gangs(2) num_workers(4) vector_length(8)")
        assert len(d.clauses) == 3


class TestFrontendErrorLocations:
    """Malformed directives must fail with the *real* source line/column —
    directive payloads are sub-lexed, and their tokens are rebased."""

    C_PREFIX = "int main() {\n  int a[4];\n  "
    F_PREFIX = "program t\n  integer :: a(4)\n  "

    def _c(self, directive_line, rest="  { }\n  return 1;\n}\n"):
        from repro.minic import parse_program

        return parse_program(self.C_PREFIX + directive_line + "\n" + rest)

    def _f(self, directive_line,
           rest="  !$acc end parallel\n  main = 1\nend program t\n"):
        from repro.minifort import parse_program

        return parse_program(self.F_PREFIX + directive_line + "\n" + rest)

    def test_c_unclosed_paren(self):
        with pytest.raises(ParseError) as err:
            self._c("#pragma acc parallel copy(a[0:4]")
        assert err.value.loc.line == 3

    def test_c_unknown_clause(self):
        line = "#pragma acc parallel frobnicate(a)"
        with pytest.raises(ParseError, match="unknown OpenACC clause") as err:
            self._c(line)
        assert err.value.loc.line == 3
        assert err.value.loc.column == 2 + line.index("frobnicate") + 1

    def test_c_bad_section_syntax(self):
        line = "#pragma acc parallel copy(a[0:4:2])"
        with pytest.raises(ParseError) as err:
            self._c(line)
        assert err.value.loc.line == 3
        # points at the stray second ':'
        assert err.value.loc.column == 2 + line.rindex(":") + 1

    def test_fortran_unclosed_paren(self):
        with pytest.raises(ParseError) as err:
            self._f("!$acc parallel copy(a(1:4)")
        assert err.value.loc.line == 3

    def test_fortran_unknown_clause(self):
        line = "!$acc parallel frobnicate(a)"
        with pytest.raises(ParseError, match="unknown OpenACC clause") as err:
            self._f(line)
        assert err.value.loc.line == 3
        assert err.value.loc.column == 2 + line.index("frobnicate") + 1

    def test_fortran_bad_section_syntax(self):
        line = "!$acc parallel copy(a(1:4:2))"
        with pytest.raises(ParseError) as err:
            self._f(line)
        assert err.value.loc.line == 3
        assert err.value.loc.column == 2 + line.rindex(":", 0, line.rindex(")")) + 1

    def test_c_unknown_directive(self):
        with pytest.raises(ParseError, match="unknown OpenACC directive"):
            self._c("#pragma acc warp_speed")
