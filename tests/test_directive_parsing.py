"""Focused tests for the shared directive/clause parser across both
surface syntaxes."""

import pytest

from repro.frontend.errors import ParseError
from repro.ir import Binary, IntLit, walk
from repro.ir.acc import normalize_clause_name


def c_directive(text: str):
    from repro.frontend.directives import DirectiveParser
    from repro.frontend.tokens import TokenStream
    from repro.minic.lexer import tokenize
    from repro.minic.parser import CParser

    parser = CParser(tokenize("int main(){return 0;}"))
    ts = TokenStream(tokenize(text))
    return parser._directive_parser.parse(ts, source=text)


def f_directive(text: str):
    from repro.frontend.tokens import TokenKind, TokenStream
    from repro.minifort.lexer import tokenize
    from repro.minifort.parser import FortranParser

    parser = FortranParser(tokenize("program t\nend program t\n"))
    toks = [t for t in tokenize(text) if t.kind is not TokenKind.NEWLINE]
    return parser._directive_parser.parse(TokenStream(toks), source=text)


class TestKinds:
    def test_multiword_kinds(self):
        assert c_directive("parallel loop").kind == "parallel loop"
        assert c_directive("kernels loop").kind == "kernels loop"
        assert c_directive("enter data copyin(a[0:4])").kind == "enter data"

    def test_single_kinds(self):
        for kind in ("parallel", "kernels", "data", "host_data", "loop",
                     "declare", "update"):
            assert c_directive(kind).kind == kind

    def test_unknown_kind_raises(self):
        with pytest.raises(ParseError):
            c_directive("warp_speed")


class TestClauseForms:
    def test_bare_wait(self):
        d = c_directive("wait")
        assert d.kind == "wait" and not d.clauses

    def test_wait_with_tag(self):
        d = c_directive("wait(7)")
        assert d.clause("wait").expr.value == 7

    def test_cache_argument(self):
        d = c_directive("cache(a[0:16])")
        ref = d.clause("cache").refs[0]
        assert ref.name == "a" and ref.sections[0].length.value == 16

    def test_async_bare_and_with_expr(self):
        assert c_directive("parallel async").clause("async").expr is None
        assert c_directive("parallel async(t)").clause("async").expr is not None

    def test_gang_with_count(self):
        d = c_directive("loop gang(4)")
        assert d.clause("gang").expr.value == 4

    def test_multiple_refs_and_clauses(self):
        d = c_directive("parallel copy(a[0:4], b[0:4]) copyin(c[0:4]) if(x)")
        assert d.clause("copy").var_names == ["a", "b"]
        assert d.clause("copyin").var_names == ["c"]
        assert d.clause("if") is not None

    def test_comma_separated_clauses(self):
        # Fortran style allows commas between clauses
        d = f_directive("parallel copy(a(1:4)), num_gangs(2)")
        assert d.clause("copy") is not None
        assert d.clause("num_gangs") is not None

    def test_reduction_operator_forms(self):
        for op in ("+", "*", "max", "min", "&&", "||", "&", "|", "^"):
            d = c_directive(f"loop reduction({op}:s)")
            assert d.clause("reduction").op == op

    def test_fortran_reduction_spellings(self):
        for op in (".and.", ".or.", "iand", "ior", "ieor", "max"):
            d = f_directive(f"loop reduction({op}:s)")
            assert d.clause("reduction").op == op

    def test_default_clause(self):
        d = c_directive("parallel default(none)")
        assert d.clause("default").op == "none"

    def test_unknown_clause_raises(self):
        with pytest.raises(ParseError):
            c_directive("parallel sideways(3)")


class TestSections:
    def test_c_start_length(self):
        d = c_directive("data copy(a[3:9])")
        section = d.clause("copy").refs[0].sections[0]
        assert section.start.value == 3 and section.length.value == 9

    def test_c_multidim_sections(self):
        d = c_directive("data copy(m[0:4][0:8])")
        assert len(d.clause("copy").refs[0].sections) == 2

    def test_fortran_lo_hi_normalised(self):
        d = f_directive("data copy(a(2:7))")
        section = d.clause("copy").refs[0].sections[0]
        assert section.start.value == 2
        # length is built as (7 - 2) + 1
        assert isinstance(section.length, Binary)

    def test_fortran_single_element(self):
        d = f_directive("data copy(a(5))")
        section = d.clause("copy").refs[0].sections[0]
        assert section.start.value == 5
        assert section.length.value == 1

    def test_bare_scalar_ref(self):
        d = c_directive("data copy(flag)")
        assert not d.clause("copy").refs[0].sections


class TestAliases:
    def test_pcopy_family(self):
        assert normalize_clause_name("pcopy") == "present_or_copy"
        assert normalize_clause_name("pcopyin") == "present_or_copyin"
        assert normalize_clause_name("pcopyout") == "present_or_copyout"
        assert normalize_clause_name("pcreate") == "present_or_create"

    def test_update_self_alias(self):
        d = c_directive("update self(a[0:4])")
        assert d.clause("host") is not None

    def test_without_clause_helper(self):
        d = c_directive("parallel copy(a[0:4]) async(1)")
        stripped = d.without_clause("async")
        assert stripped.clause("async") is None
        assert stripped.clause("copy") is not None
        # the original is untouched
        assert d.clause("async") is not None
