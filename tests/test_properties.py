"""Property-based tests over the execution model.

Hypothesis generates whole OpenACC programs with randomised geometry
(gang/worker/vector counts, iteration counts, operators) and checks the
execution model's core invariants against Python oracles:

* work-sharing covers every iteration exactly once for any geometry;
* removing work-sharing multiplies effects by exactly the gang count;
* reductions match a sequential fold regardless of distribution;
* data round-trips preserve values for any section;
* the certainty statistic matches its closed form.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import Compiler
from repro.spec.reductions import reduction_combine, reduction_identity

CC = Compiler()
_SETTINGS = dict(max_examples=25, deadline=None)


@settings(**_SETTINGS)
@given(
    n=st.integers(1, 60),
    gangs=st.integers(1, 12),
    levels=st.sampled_from(["gang", "gang worker", "gang vector", "worker",
                            "vector"]),
    workers=st.integers(1, 5),
    vlen=st.integers(1, 8),
)
def test_worksharing_covers_exactly_once(n, gangs, levels, workers, vlen):
    """Any gang-led schedule touches each element exactly once; schedules
    without a gang level run once per gang (redundant execution)."""
    src = f"""
int main(){{
  int i, bad = 0;
  int a[{n}];
  for(i=0;i<{n};i++) a[i] = 0;
  #pragma acc parallel num_gangs({gangs}) num_workers({workers}) vector_length({vlen}) copy(a[0:{n}])
  {{
    #pragma acc loop {levels}
    for(i=0;i<{n};i++) a[i]++;
  }}
  for(i=0;i<{n};i++) if (a[i] != {gangs if 'gang' not in levels else 1}) bad++;
  return bad == 0;
}}
"""
    assert CC.compile(src, "c").run().value == 1


@settings(**_SETTINGS)
@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=40),
    op=st.sampled_from(["+", "max", "min"]),
    gangs=st.integers(1, 8),
    v0=st.integers(-10, 10),
)
def test_reduction_matches_sequential_fold(values, op, gangs, v0):
    n = len(values)
    init = " ".join(f"d[{i}] = {v};" for i, v in enumerate(values))
    combine = {
        "+": "s += d[i];",
        "max": "s = (d[i] > s) ? d[i] : s;",
        "min": "s = (d[i] < s) ? d[i] : s;",
    }[op]
    src = f"""
int main(){{
  int i, s = {v0};
  int d[{n}];
  {init}
  #pragma acc parallel loop num_gangs({gangs}) reduction({op}:s) copyin(d[0:{n}])
  for(i=0;i<{n};i++)
    {combine}
  return s;
}}
"""
    expected = v0
    for v in values:
        expected = reduction_combine(op, expected, v)
    result = CC.compile(src, "c").run()
    assert result.value == expected


@settings(**_SETTINGS)
@given(
    n=st.integers(1, 40),
    start=st.integers(0, 10),
    scale=st.integers(1, 9),
)
def test_data_roundtrip_preserves_section(n, start, scale):
    """copy of a section transforms exactly the section, in place."""
    total = n + start + 5
    length = n
    src = f"""
int main(){{
  int i, ok = 1;
  int a[{total}];
  for(i=0;i<{total};i++) a[i] = i;
  #pragma acc parallel loop copy(a[{start}:{length}])
  for(i={start};i<{start + length};i++) a[i] = a[i] * {scale};
  for(i=0;i<{start};i++) if (a[i] != i) ok = 0;
  for(i={start};i<{start + length};i++) if (a[i] != i * {scale}) ok = 0;
  for(i={start + length};i<{total};i++) if (a[i] != i) ok = 0;
  return ok;
}}
"""
    assert CC.compile(src, "c").run().value == 1


@settings(**_SETTINGS)
@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 6),
    gangs=st.integers(1, 5),
)
def test_collapse_covers_product_space(rows, cols, gangs):
    src = f"""
int main(){{
  int i, j, bad = 0;
  int m[{rows}][{cols}];
  for(i=0;i<{rows};i++) for(j=0;j<{cols};j++) m[i][j] = 0;
  #pragma acc parallel num_gangs({gangs}) copy(m)
  {{
    #pragma acc loop collapse(2)
    for(i=0;i<{rows};i++)
      for(j=0;j<{cols};j++)
        m[i][j]++;
  }}
  for(i=0;i<{rows};i++) for(j=0;j<{cols};j++) if (m[i][j] != 1) bad++;
  return bad == 0;
}}
"""
    assert CC.compile(src, "c").run().value == 1


@settings(**_SETTINGS)
@given(
    n=st.integers(1, 30),
    delta=st.integers(1, 100),
    use_fortran=st.booleans(),
)
def test_languages_agree(n, delta, use_fortran):
    """The same computation gives the same result in both frontends."""
    c_src = f"""
int main(){{
  int i, s = 0;
  int a[{n}];
  for(i=0;i<{n};i++) a[i] = i + {delta};
  #pragma acc parallel loop reduction(+:s) copyin(a[0:{n}])
  for(i=0;i<{n};i++) s += a[i];
  return s;
}}
"""
    f_src = f"""
program agree
  implicit none
  integer :: i, s
  integer :: a({n})
  s = 0
  do i = 1, {n}
    a(i) = i - 1 + {delta}
  end do
  !$acc parallel loop reduction(+:s) copyin(a(1:{n}))
  do i = 1, {n}
    s = s + a(i)
  end do
  !$acc end parallel loop
  main = s
end program agree
"""
    c_result = CC.compile(c_src, "c").run().value
    f_result = CC.compile(f_src, "fortran").run().value
    expected = sum(range(n)) + n * delta
    assert c_result == f_result == expected


@settings(**_SETTINGS)
@given(
    gangs=st.integers(1, 10),
    v0=st.integers(-5, 5),
    contribution=st.integers(-5, 5),
)
def test_construct_reduction_linear_in_gangs(gangs, v0, contribution):
    src = f"""
int main(){{
  int x = {v0};
  #pragma acc parallel num_gangs({gangs}) reduction(+:x)
  {{ x = x + {contribution}; }}
  return x;
}}
"""
    result = CC.compile(src, "c").run()
    assert result.value == v0 + gangs * contribution


@settings(**_SETTINGS)
@given(seeds=st.integers(0, 2**31 - 1))
def test_rng_isolated_between_runs(seeds):
    src = "int main(){ return rand() % 97; }"
    program = CC.compile(src, "c")
    assert program.run(rng_seed=seeds).value == program.run(rng_seed=seeds).value


# ---------------------------------------------------------------------------
# the certainty statistic (harness/stats.py, paper Section III)
# ---------------------------------------------------------------------------

from repro.harness.stats import (  # noqa: E402
    accidental_pass_probability,
    certainty,
    cross_fail_probability,
)


@settings(**_SETTINGS)
@given(m=st.integers(1, 10_000))
def test_certainty_boundaries(m):
    """pc(0, M) == 0 (no failed crosses — nothing validated) and
    pc(M, M) == 1 (every cross failed — full confidence), exactly."""
    assert certainty(0, m) == 0.0
    assert certainty(m, m) == 1.0


@settings(**_SETTINGS)
@given(data=st.data(), m=st.integers(2, 2_000))
def test_certainty_monotone_in_nf(data, m):
    """More failed crosses can only raise (never lower) the certainty."""
    nf = data.draw(st.integers(0, m - 1))
    assert certainty(nf, m) <= certainty(nf + 1, m)


@settings(**_SETTINGS)
@given(data=st.data(), m=st.integers(1, 10**6))
def test_certainty_stays_finite_and_bounded(data, m):
    """No overflow/NaN at large M: every statistic stays in [0, 1] and
    pa + pc reconstructs to 1 within float addition."""
    import math

    nf = data.draw(st.integers(0, m))
    p = cross_fail_probability(nf, m)
    pa = accidental_pass_probability(nf, m)
    pc = certainty(nf, m)
    for value in (p, pa, pc):
        assert math.isfinite(value)
        assert 0.0 <= value <= 1.0
    assert pa + pc == pytest.approx(1.0)


@settings(**_SETTINGS)
@given(data=st.data(), m=st.integers(1, 5_000))
def test_certainty_matches_closed_form(data, m):
    """pc = 1 - (1 - nf/M)^M, straight from the paper's formula."""
    nf = data.draw(st.integers(0, m))
    assert certainty(nf, m) == pytest.approx(1.0 - (1.0 - nf / m) ** m)


def test_stats_reject_invalid_counts():
    with pytest.raises(ValueError):
        cross_fail_probability(1, 0)
    with pytest.raises(ValueError):
        cross_fail_probability(-1, 10)
    with pytest.raises(ValueError):
        cross_fail_probability(11, 10)
