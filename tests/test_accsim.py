"""Tests for the accelerator simulator: values, memory, async queues,
machine and the runtime library."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.accsim import (
    AccRuntime,
    ArrayValue,
    AsyncQueues,
    Cell,
    DeviceMemory,
    DevicePointer,
    Machine,
    apply_environment,
)
from repro.accsim.errors import (
    AccRuntimeError,
    DeviceAllocationError,
    InvalidDeviceError,
    PresentError,
)
from repro.accsim.memory import fill_garbage
from repro.spec.devices import (
    ACC_DEVICE_HOST,
    ACC_DEVICE_NONE,
    ACC_DEVICE_NOT_HOST,
    ACC_DEVICE_NVIDIA,
)


class TestArrayValue:
    def test_zero_based_indexing(self):
        a = ArrayValue((5,), "int")
        a.set([2], 7)
        assert a.get([2]) == 7

    def test_fortran_lower_bounds(self):
        a = ArrayValue((5,), "int", lowers=(1,))
        a.set([1], 42)
        a.set([5], 43)
        assert a.get([1]) == 42 and a.get([5]) == 43

    def test_out_of_bounds_raises(self):
        a = ArrayValue((3,), "int", lowers=(1,))
        with pytest.raises(AccRuntimeError):
            a.get([0])
        with pytest.raises(AccRuntimeError):
            a.get([4])

    def test_rank_mismatch_raises(self):
        a = ArrayValue((3, 3), "int")
        with pytest.raises(AccRuntimeError):
            a.get([1])

    def test_negative_extent_rejected(self):
        with pytest.raises(AccRuntimeError):
            ArrayValue((-1,), "int")

    def test_float_roundtrip(self):
        a = ArrayValue((2,), "double")
        a.set([0], 2.5)
        assert a.get([0]) == 2.5
        assert isinstance(a.get([0]), float)

    def test_sections_respect_declared_space(self):
        a = ArrayValue((10,), "int", lowers=(1,))
        a.data[:] = np.arange(10)
        section = a.read_section(3, 4)  # declared indices 3..6
        assert list(section) == [2, 3, 4, 5]
        a.write_section(3, np.array([9, 9, 9, 9]))
        assert a.get([3]) == 9 and a.get([6]) == 9

    def test_clone_is_independent(self):
        a = ArrayValue((3,), "int")
        b = a.clone()
        b.set([0], 5)
        assert a.get([0]) == 0

    @given(st.integers(1, 50), st.integers(-5, 5))
    def test_indexing_matches_numpy(self, n, lower):
        a = ArrayValue((n,), "int", lowers=(lower,))
        a.data[:] = np.arange(n)
        for offset in (0, n // 2, n - 1):
            assert a.get([lower + offset]) == offset


class TestDevicePointer:
    def test_as_array_sizes_by_itemsize(self):
        p = DevicePointer(nbytes=40)
        assert p.as_array("int").length == 10
        p2 = DevicePointer(nbytes=40)
        assert p2.as_array("double").length == 5

    def test_use_after_free_raises(self):
        memory = DeviceMemory()
        p = memory.malloc(16)
        memory.free(p)
        with pytest.raises(AccRuntimeError):
            p.as_array("int")

    def test_double_free_raises(self):
        memory = DeviceMemory()
        p = memory.malloc(16)
        memory.free(p)
        with pytest.raises(DeviceAllocationError):
            memory.free(p)


class TestDeviceMemory:
    def _cell(self, n=4, fill=0):
        a = ArrayValue((n,), "int", fill=fill)
        return Cell(a, name="a"), a

    def test_copy_roundtrip(self):
        memory = DeviceMemory()
        cell, host = self._cell(fill=3)
        mapping = memory.enter("copy", cell, 0, 4)
        assert mapping.device_data.get([1]) == 3  # copied in
        mapping.device_data.set([1], 99)
        memory.exit(mapping)
        assert host.get([1]) == 99  # copied out
        assert not memory.is_present(cell)

    def test_copyin_no_writeback(self):
        memory = DeviceMemory()
        cell, host = self._cell(fill=5)
        mapping = memory.enter("copyin", cell, 0, 4)
        mapping.device_data.set([0], -1)
        memory.exit(mapping)
        assert host.get([0]) == 5

    def test_copyout_garbage_in(self):
        memory = DeviceMemory()
        cell, host = self._cell(fill=7)
        mapping = memory.enter("copyout", cell, 0, 4)
        # fresh allocation must NOT contain the host values
        assert mapping.device_data.get([0]) != 7
        mapping.device_data.set([0], 1)
        mapping.device_data.set([1], 2)
        mapping.device_data.set([2], 3)
        mapping.device_data.set([3], 4)
        memory.exit(mapping)
        assert [host.get([i]) for i in range(4)] == [1, 2, 3, 4]

    def test_create_no_transfers(self):
        memory = DeviceMemory()
        cell, host = self._cell(fill=11)
        mapping = memory.enter("create", cell, 0, 4)
        mapping.device_data.set([0], 1)
        memory.exit(mapping)
        assert host.get([0]) == 11

    def test_present_requires_mapping(self):
        memory = DeviceMemory()
        cell, _ = self._cell()
        with pytest.raises(PresentError):
            memory.enter("present", cell)

    def test_present_refcounts(self):
        memory = DeviceMemory()
        cell, host = self._cell(fill=1)
        outer = memory.enter("copy", cell, 0, 4)
        inner = memory.enter("present", cell, 0, 4)
        assert inner is outer and outer.refcount == 2
        memory.exit(inner)
        assert memory.is_present(cell)
        outer.device_data.set([0], 42)
        memory.exit(outer)
        assert host.get([0]) == 42

    def test_present_or_copy_reuses(self):
        memory = DeviceMemory()
        cell, host = self._cell(fill=1)
        outer = memory.enter("copyin", cell, 0, 4)
        inner = memory.enter("present_or_copy", cell, 0, 4)
        assert inner is outer
        inner.device_data.set([0], 9)
        memory.exit(inner)
        memory.exit(outer)
        # the copyin owner never writes back
        assert host.get([0]) == 1

    def test_alias_cells_share_mapping(self):
        """A parameter bound to the caller's array must see its mapping."""
        memory = DeviceMemory()
        cell, host = self._cell(fill=2)
        alias = Cell(host, name="param")
        memory.enter("copyin", cell, 0, 4)
        assert memory.is_present(alias)

    def test_scalar_copy(self):
        memory = DeviceMemory()
        cell = Cell(5, name="flag")
        mapping = memory.enter("copy", cell)
        assert mapping.device_data == 5
        mapping.device_data = 6
        memory.exit(mapping)
        assert cell.value == 6

    def test_scalar_skip_transfer_hook(self):
        memory = DeviceMemory()
        cell = Cell(5, name="flag")
        mapping = memory.enter("copy", cell, skip_scalar_transfer=True)
        assert mapping.device_data != 5  # garbage, not copied
        mapping.device_data = 7
        memory.exit(mapping)
        assert cell.value == 5  # no copyout either (Cray bug)

    def test_update_host_device(self):
        memory = DeviceMemory()
        cell, host = self._cell(fill=1)
        mapping = memory.enter("copyin", cell, 0, 4)
        host.set([0], 50)
        memory.update_device(cell, 0, 1)
        assert mapping.device_data.get([0]) == 50
        mapping.device_data.set([1], 60)
        memory.update_host(cell, 1, 1)
        assert host.get([1]) == 60

    def test_update_absent_raises(self):
        memory = DeviceMemory()
        cell, _ = self._cell()
        with pytest.raises(PresentError):
            memory.update_host(cell)

    def test_unstructured_delete_and_copyout(self):
        memory = DeviceMemory()
        cell, host = self._cell(fill=0)
        memory.enter("copyin", cell, 0, 4)
        memory.lookup(cell).device_data.set([0], 8)
        memory.force_copyout(cell)
        assert host.get([0]) == 8
        assert not memory.is_present(cell)
        memory.enter("create", cell, 0, 4)
        memory.delete(cell)
        assert not memory.is_present(cell)

    def test_bytes_accounting(self):
        memory = DeviceMemory()
        cell, _ = self._cell(n=10)
        mapping = memory.enter("create", cell, 0, 10)
        assert memory.bytes_allocated == mapping.device_data.data.nbytes
        memory.exit(mapping)
        assert memory.bytes_allocated == 0

    def test_fill_garbage_deterministic(self):
        a = ArrayValue((8,), "int")
        b = ArrayValue((8,), "int")
        fill_garbage(a, 3)
        fill_garbage(b, 3)
        assert np.array_equal(a.data, b.data)
        fill_garbage(b, 4)
        assert not np.array_equal(a.data, b.data)

    @given(st.integers(1, 30), st.integers(0, 10))
    def test_section_copy_roundtrip(self, n, start_off):
        length = max(1, n - start_off)
        if start_off + length > n:
            length = n - start_off
        if length <= 0:
            return
        memory = DeviceMemory()
        host = ArrayValue((n,), "int")
        host.data[:] = np.arange(n)
        cell = Cell(host, name="h")
        mapping = memory.enter("copy", cell, start_off, length)
        memory.exit(mapping)
        assert list(host.data) == list(range(n))


class TestAsyncQueues:
    def test_deferred_execution(self):
        q = AsyncQueues()
        fired = []
        q.enqueue(1, lambda: fired.append("a"))
        assert not q.test(1)
        assert fired == []
        q.wait(1)
        assert fired == ["a"]
        assert q.test(1)

    def test_queues_independent(self):
        q = AsyncQueues()
        q.enqueue(1, lambda: None)
        assert q.test(2)
        assert not q.test_all()

    def test_default_queue(self):
        q = AsyncQueues()
        fired = []
        q.enqueue(None, lambda: fired.append(1))
        assert not q.test(None)
        q.wait(None)
        assert fired == [1]

    def test_wait_all_drains_everything(self):
        q = AsyncQueues()
        fired = []
        for tag in (1, 2, None):
            q.enqueue(tag, lambda t=tag: fired.append(t))
        q.wait_all()
        assert q.test_all() and len(fired) == 3

    def test_order_within_queue(self):
        q = AsyncQueues()
        fired = []
        q.enqueue(5, lambda: fired.append(1))
        q.enqueue(5, lambda: fired.append(2))
        q.wait(5)
        assert fired == [1, 2]

    def test_logical_clock(self):
        q = AsyncQueues()
        q.enqueue(1, lambda: None)
        q.enqueue(1, lambda: None)
        assert q.enqueued == 2 and q.completed == 0
        q.wait(1)
        assert q.completed == 2


class TestMachineAndRuntime:
    def test_current_device_prefers_accelerator(self):
        m = Machine()
        assert m.current_device().device_type is ACC_DEVICE_NVIDIA

    def test_set_host_type(self):
        m = Machine()
        m.set_device_type(ACC_DEVICE_HOST)
        assert m.current_device().is_host

    def test_bad_device_num(self):
        m = Machine(accel_count=1)
        m.set_device_num(5)
        with pytest.raises(InvalidDeviceError):
            m.current_device()

    def test_num_devices(self):
        rt = AccRuntime(Machine(accel_count=2))
        assert rt.acc_get_num_devices(ACC_DEVICE_NOT_HOST) == 2
        assert rt.acc_get_num_devices(ACC_DEVICE_NONE) == 0

    def test_device_type_roundtrip(self):
        rt = AccRuntime(Machine())
        rt.acc_set_device_type(ACC_DEVICE_NOT_HOST)
        concrete = rt.acc_get_device_type()
        assert concrete.not_host

    def test_on_device_host_binding(self):
        rt = AccRuntime(Machine())
        assert rt.acc_on_device(ACC_DEVICE_HOST) == 1
        assert rt.acc_on_device(ACC_DEVICE_NOT_HOST) == 0

    def test_shutdown_flushes_and_resets(self):
        m = Machine()
        rt = AccRuntime(m)
        dev = m.current_device()
        fired = []
        dev.queues.enqueue(1, lambda: fired.append(1))
        rt.acc_shutdown(ACC_DEVICE_NOT_HOST)
        assert fired == [1]
        assert m.current_device().queues.pending() == 0

    def test_async_hook_override(self):
        class Hooks:
            def hook_async_test(self, tag, result):
                return -1

        rt = AccRuntime(Machine(), hooks=Hooks())
        assert rt.acc_async_test(3) == -1

    def test_env_device_type(self):
        m = Machine()
        apply_environment(m, {"ACC_DEVICE_TYPE": "HOST"})
        assert m.current_device().is_host

    def test_env_device_num_invalid(self):
        m = Machine()
        with pytest.raises(InvalidDeviceError):
            apply_environment(m, {"ACC_DEVICE_NUM": "zero"})

    def test_env_unknown_type(self):
        m = Machine()
        with pytest.raises(InvalidDeviceError):
            apply_environment(m, {"ACC_DEVICE_TYPE": "ABACUS"})
