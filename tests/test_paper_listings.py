"""The paper's code listings, verbatim (modulo sizes), as integration tests.

Each test reproduces one figure's program and checks the outcome the paper
describes.  These are the ground-truth anchors of the reproduction.
"""

import pytest

from repro.compiler import Compiler


CC = Compiler()


def run(src: str):
    return CC.compile(src, "c").run()


class TestFig2LoopDirective:
    FUNCTIONAL = """
int main() {
  int i, n = 100, error = 0;
  int A[100];
  for(i=0; i<n; i++) A[i] = 0;
  #pragma acc parallel num_gangs(10) copy(A[0:n])
  {
    #pragma acc loop
    for(i=0; i<n; i++)
      A[i] = A[i] + 1;
  }
  for(i=0; i<n; i++) if(A[i] != 1) error++;
  return (error == 0);
}
"""

    def test_functional(self):
        assert run(self.FUNCTIONAL).value == 1

    def test_cross_each_gang_increments(self):
        cross = self.FUNCTIONAL.replace("    #pragma acc loop\n", "")
        assert run(cross).value == 0


class TestFig4NumWorkers:
    def test_nested_gang_worker_reduction(self):
        src = """
int main() {
  int i, j, error = 0;
  int gangs = 4, workers = 4, workers_load = 32;
  int gangs_red[4];
  for(i=0; i<gangs; i++)
    gangs_red[i] = 0;
  #pragma acc parallel copy(gangs_red[0:gangs]) \\
                       num_gangs(gangs) \\
                       num_workers(workers)
  {
    #pragma acc loop gang
    for(i=0; i<gangs; i++){
      int to_reduct = 0;
      #pragma acc loop worker reduction(+:to_reduct)
      for(j=0; j<workers_load; j++)
        to_reduct++;
      gangs_red[i] = to_reduct;
    }
  }
  error = 0;
  for(i=0; i<gangs; i++){
    if(gangs_red[i] != workers_load)
      error++;
  }
  return (error == 0);
}
"""
        assert run(src).value == 1


class TestFig5ParallelIf:
    def test_46_device_iterations_at_n1000(self):
        """With N = 1000 the paper derives exactly 46 offloaded
        iterations; C must end at 46*(A+B)."""
        src = """
int main() {
  int i, error = 0, sum;
  int N = 1000;
  int A[1000], B[1000], C[1000];
  for(i=0; i<N; i++){ A[i]=1; B[i]=2; C[i]=0; }
  #pragma acc data copy(C[0:N]) copyin(A[0:N], B[0:N])
  {
    sum = 1;
    for(int m=0; m<N; m++){
      #pragma acc parallel loop if (sum < N)
      for(int j=0; j<N; j++){
        C[j] += A[j] + B[j];
      }
      sum += m;
    }
  }
  for(i=0; i<N; i++){
    if(C[i] != 46*(A[i] + B[i]))
      error++;
  }
  return (error == 0);
}
"""
        from repro.compiler import ExecutionLimits

        result = CC.compile(src, "c").run(
            limits=ExecutionLimits(max_steps=30_000_000)
        )
        assert result.value == 1


class TestFig6DataCopy:
    SRC = """
int main() {
  int i, j, error = 0;
  int N = 64, HOST = 1, DEVICE = 2;
  int flag;
  int A[64], B[64], C[64], known_C[64];
  flag = HOST;
  for(i=0; i<N; i++){
    A[i]=i; B[i]=i;
    known_C[i]=A[i]+B[i]+DEVICE;
  }
  #pragma acc data create(flag) copy(A[0:N],B[0:N],C[0:N])
  {
    #pragma acc parallel
    {
      flag = DEVICE;
      #pragma acc loop
      for(j=0; j<N; j++)
        C[j] = A[j]+B[j]+flag;
    }
  }
  for(i=0; i<N; i++){
    if((C[i]!=known_C[i]) || (flag!=HOST))
      error++;
  }
  return (error==0);
}
"""

    def test_device_flag_stays_on_device(self):
        assert run(self.SRC).value == 1


class TestFig7FloatReduction:
    def test_geometric_series_with_tolerance(self):
        src = """
int main() {
  int i, error = 0;
  int N = 20;
  float fsum, ft, fpt, fknown_sum, frounding_error;
  fsum = 0; ft = 0.5; fpt = 1;
  frounding_error = 1.E-9;
  for(int k=0; k<N; k++){
    fpt *= ft;
  }
  fknown_sum = (1-fpt)/(1-ft);
  #pragma acc kernels loop reduction(+:fsum)
  for (i=0; i<N; i++)
    fsum += powf(ft,i);
  if(fabsf(fsum-fknown_sum) > frounding_error)
    error++;
  return (error == 0);
}
"""
        assert run(src).value == 1


class TestFig9NumGangs:
    def test_constant_and_variable_expressions(self):
        src = """
int main() {
  int gangs = 8;
  int known_gang_num = 8;
  int gang_num = 0;
  #pragma acc parallel num_gangs(gangs) reduction(+:gang_num)
  {
    gang_num++;
  }
  return (gang_num == known_gang_num);
}
"""
        assert run(src).value == 1


class TestFig10AsyncTest:
    def test_zero_then_nonzero(self):
        src = """
int main() {
  int i, N = 64, tag = 1;
  int A[64], B[64], C[64];
  int is_sync = -1, ok = 1;
  for(i=0; i<N; i++){ A[i]=i; B[i]=2*i; C[i]=0; }
  #pragma acc kernels copyin(A[0:N], B[0:N]) copy(C[0:N]) async(tag)
  for(i=0; i<N; i++)
    C[i] = A[i] + B[i];
  is_sync = acc_async_test(tag);
  if (is_sync != 0) ok = 0;
  #pragma acc wait(tag)
  is_sync = acc_async_test(tag);
  if (is_sync == 0) ok = 0;
  for(i=0; i<N; i++) if (C[i] != 3*i) ok = 0;
  return ok;
}
"""
        assert run(src).value == 1


class TestFig12DeviceType:
    def test_not_host_is_implementation_defined(self):
        """Fig. 12's literal check fails on realistic implementations: the
        concrete type is implementation-defined (acc_device_nvidia here)."""
        src = """
int main() {
  int literal_equal;
  acc_set_device_type(acc_device_not_host);
  literal_equal = (acc_get_device_type() == acc_device_not_host);
  acc_shutdown(acc_device_not_host);
  return literal_equal;
}
"""
        assert run(src).value == 0  # the paper's observed ambiguity

    def test_standard_guarantee_holds(self):
        src = """
int main() {
  int ok;
  acc_set_device_type(acc_device_not_host);
  ok = (acc_get_device_type() != acc_device_host)
    && (acc_get_device_type() != acc_device_none);
  return ok;
}
"""
        assert run(src).value == 1
