"""Tests for the vendor simulations: Table I calibration, bug composition,
detection of each showcase bug from Section V-B."""

import pytest

from repro.analysis import PAPER_TABLE1, detected_bug_ids, table1_counts
from repro.compiler import Compiler, CompileError
from repro.compiler.behavior import REFERENCE_BEHAVIOR
from repro.compiler.vendors import (
    BugRecord,
    VendorVersion,
    compose_behavior,
    vendor_version,
    vendor_versions,
)
from repro.compiler.vendors.bugmodel import feature_unsupported_patch
from repro.harness import HarnessConfig, ValidationRunner
from repro.suite import openacc10_suite


class TestBugComposition:
    def test_set_fields_union(self):
        bug1 = BugRecord.make("b1", "t", "c",
                              {"unsupported_directives": frozenset({"cache"})})
        bug2 = BugRecord.make("b2", "t", "c",
                              {"unsupported_directives": frozenset({"declare"})})
        behavior = compose_behavior(REFERENCE_BEHAVIOR, [bug1, bug2])
        assert behavior.unsupported_directives == {"cache", "declare"}

    def test_bool_fields_set(self):
        bug = BugRecord.make("b", "t", "c", {"skip_scalar_data_transfers": True})
        assert compose_behavior(REFERENCE_BEHAVIOR, [bug]).skip_scalar_data_transfers

    def test_no_bugs_is_reference(self):
        assert compose_behavior(REFERENCE_BEHAVIOR, []) is REFERENCE_BEHAVIOR

    def test_feature_patch_mapping(self):
        assert feature_unsupported_patch("cache") == {
            "unsupported_directives": frozenset({"cache"})
        }
        assert feature_unsupported_patch("parallel.copyin") == {
            "unsupported_clauses": frozenset({("parallel", "copyin")})
        }
        assert feature_unsupported_patch("runtime.acc_malloc") == {
            "unsupported_routines": frozenset({"acc_malloc"})
        }
        assert feature_unsupported_patch("loop.reduction.int_bitxor") == {
            "broken_reductions": frozenset({"^"})
        }


class TestTable1Calibration:
    @pytest.mark.parametrize("vendor", ["caps", "pgi", "cray"])
    def test_counts_match_paper_exactly(self, vendor):
        for row in table1_counts(vendor):
            assert (row.c_bugs, row.fortran_bugs) == row.paper_counts, (
                f"{vendor} {row.version}: model {(row.c_bugs, row.fortran_bugs)}"
                f" != paper {row.paper_counts}"
            )

    def test_all_paper_versions_modelled(self):
        for vendor, versions in PAPER_TABLE1.items():
            modelled = {vv.version for vv in vendor_versions(vendor)}
            assert modelled == set(versions)

    def test_bug_ids_unique_within_version(self):
        for vendor in ("caps", "pgi", "cray"):
            for vv in vendor_versions(vendor):
                for lang in ("c", "fortran"):
                    ids = [b.bug_id for b in vv.bugs(lang)]
                    assert len(ids) == len(set(ids))


class TestShowcaseBugs:
    """Each Section V-B bug must be observable through the suite."""

    def test_caps_constant_expression_bug(self):
        """Fig. 9: variable num_gangs rejected before 3.1.0."""
        old = Compiler(vendor_version("caps", "3.0.7").behavior("c"))
        src = """
int main(){
  int gangs = 8, gang_num = 0;
  #pragma acc parallel num_gangs(gangs) reduction(+:gang_num)
  { gang_num++; }
  return (gang_num == 8);
}
"""
        with pytest.raises(CompileError):
            old.compile(src, "c")
        fixed = Compiler(vendor_version("caps", "3.1.0").behavior("c"))
        assert fixed.compile(src, "c").run().value == 1

    def test_pgi_async_wedge(self):
        """Fig. 10: acc_async_test stuck at -1 with data clauses present."""
        pgi = Compiler(vendor_version("pgi", "13.8").behavior("c"))
        src = """
int main(){
  int i, N = 10, tag = 3, is_sync = -1;
  int A[10], C[10];
  for(i=0;i<N;i++){ A[i]=i; C[i]=0; }
  #pragma acc kernels copyin(A[0:N]) copy(C[0:N]) async(tag)
  for(i=0;i<N;i++) C[i] = A[i] + 1;
  is_sync = acc_async_test(tag);
  return is_sync;
}
"""
        assert pgi.compile(src, "c").run().value == -1

    def test_pgi_async_fine_with_data_construct(self):
        """Moving data clauses out restores async (Section V-B)."""
        pgi = Compiler(vendor_version("pgi", "13.2").behavior("c"))
        src = """
int main(){
  int i, N = 10, tag = 3, ok = 1, is_sync = -1;
  int A[10], C[10];
  for(i=0;i<N;i++){ A[i]=i; C[i]=0; }
  #pragma acc data copyin(A[0:N]) copy(C[0:N])
  {
    #pragma acc kernels async(tag)
    {
      #pragma acc loop
      for(i=0;i<N;i++) C[i] = A[i] + 1;
    }
    is_sync = acc_async_test(tag);
    if (is_sync != 0) ok = 0;
    #pragma acc wait(tag)
    is_sync = acc_async_test(tag);
    if (is_sync == 0) ok = 0;
  }
  return ok;
}
"""
        assert pgi.compile(src, "c").run().value == 1

    def test_cray_scalar_copy_bug(self):
        cray = Compiler(vendor_version("cray", "8.1.2").behavior("c"))
        src = """
int main(){
  int flag = 0;
  #pragma acc parallel copy(flag)
  { flag = 1; }
  return flag;
}
"""
        assert cray.compile(src, "c").run().value == 0

    def test_cray_dead_region_elimination(self):
        """Fig. 11: a copy-only region is deleted entirely."""
        cray = Compiler(vendor_version("cray", "8.1.2").behavior("c"))
        src = """
int main(){
  int i, b[4], c[4];
  for(i=0;i<4;i++){ b[i]=9; c[i]=0; }
  #pragma acc parallel copyout(b[0:4], c[0:4])
  {
    #pragma acc loop
    for(i=0;i<4;i++) c[i] = b[i];
  }
  return c[0];
}
"""
        assert cray.compile(src, "c").run().value == 0

    def test_worker_ignored_in_pgi_profile(self):
        behavior = vendor_version("pgi", "13.8").behavior("c")
        assert behavior.worker_ignored


class TestVendorSuiteRuns:
    @pytest.fixture(scope="class")
    def suite(self):
        return openacc10_suite()

    def _rate(self, vendor, version, language, suite):
        vv = vendor_version(vendor, version)
        config = HarnessConfig(iterations=1, run_cross=False,
                               languages=(language,))
        runner = ValidationRunner(vv.behavior(language), config)
        return runner.run_suite(suite)

    def test_clean_caps_passes_everything(self, suite):
        report = self._rate("caps", "3.3.4", "c", suite)
        assert report.pass_rate() == 100.0
        report = self._rate("caps", "3.3.4", "fortran", suite)
        assert report.pass_rate() == 100.0

    def test_caps_beta_much_worse_than_final(self, suite):
        beta = self._rate("caps", "3.0.7", "c", suite).pass_rate()
        final = self._rate("caps", "3.3.3", "c", suite).pass_rate()
        assert beta < final - 30

    def test_caps_308_fortran_regression(self, suite):
        before = self._rate("caps", "3.0.7", "fortran", suite).pass_rate()
        regressed = self._rate("caps", "3.0.8", "fortran", suite).pass_rate()
        assert regressed < before - 15

    def test_pgi_132_dip(self, suite):
        prior = self._rate("pgi", "12.10", "c", suite).pass_rate()
        dip = self._rate("pgi", "13.2", "c", suite).pass_rate()
        recovered = self._rate("pgi", "13.4", "c", suite).pass_rate()
        assert dip < prior
        assert recovered > dip

    def test_cray_flat_over_versions(self, suite):
        first = self._rate("cray", "8.1.2", "c", suite).pass_rate()
        last = self._rate("cray", "8.2.0", "c", suite).pass_rate()
        assert first == last

    def test_every_bug_detected_by_suite(self, suite):
        """The suite must detect (attribute a failing test to) every bug of
        a representative version of each vendor."""
        for vendor, version in (("pgi", "13.8"), ("cray", "8.1.2"),
                                ("caps", "3.1.0")):
            vv = vendor_version(vendor, version)
            for language in ("c", "fortran"):
                bugs = vv.bugs(language)
                if not bugs:
                    continue
                config = HarnessConfig(iterations=1, run_cross=False,
                                       languages=(language,))
                runner = ValidationRunner(vv.behavior(language), config)
                report = runner.run_suite(suite)
                detected = detected_bug_ids(vv, language, report)
                undetected = {b.bug_id for b in bugs if b.affects} - detected
                assert not undetected, f"{vendor} {version} {language}: {undetected}"
