"""Tests for the whole-program passes (ACC4xx data-environment flow,
ACC5xx async-race analysis) and the reporting infrastructure that rides
with them: SARIF export, inline suppressions, the corpus baseline, and
the incremental lint cache."""

import json
import time

import pytest

from repro.compiler import Compiler, CompilerBehavior
from repro.harness import HarnessConfig, ValidationRunner
from repro.harness.runner import FailureKind
from repro.obs.metrics import MetricsRegistry
from repro.staticcheck import (
    Baseline,
    LintCache,
    Severity,
    apply_suppressions,
    baseline_from_findings,
    catalog_version,
    lint_source,
    lint_suite,
    lint_template,
    lint_template_raw,
    loads_baseline,
    merge_reports,
    parse_suppressions,
    render_lint_json,
    render_lint_sarif,
    sarif_report,
    shipped_baseline,
    template_key,
    validate_sarif,
)
from repro.suite import combination_suite, openacc20_suite
from repro.suite.registry import openacc10_suite
from repro.templates import TestTemplate as Template
from repro.templates.generator import generate_functional


def codes(diags):
    return [d.code for d in diags]


def lint_c(source):
    return lint_source(source, language="c", name="test.c")


def lint_f(source):
    return lint_source(source, language="fortran", name="test.f90")


def template(code, *, feature="parallel", language="c", name="t.c", **kw):
    return Template(name=name, feature=feature, language=language,
                    code=code, **kw)


# ---------------------------------------------------------------------------
# pass 4: data-environment flow (ACC4xx)
# ---------------------------------------------------------------------------


class TestDataEnvFlow:
    def test_acc401_host_read_of_stale_copy(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            #pragma acc parallel loop
            for(i=0;i<4;i++) a[i] = i;
            if (a[0] != 0) return 0;
          }
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC401"]
        assert diags[0].severity is Severity.ERROR
        assert "device copy is newer" in diags[0].message

    def test_acc401_update_host_restores_coherence(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            #pragma acc parallel loop
            for(i=0;i<4;i++) a[i] = i;
            #pragma acc update host(a[0:4])
            if (a[0] != 0) return 0;
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc401_discarded_writes_is_warning(self):
        # the testsuite's copyin probes rely on device writes being
        # discarded at region exit — a smell, not an error
        src = """
        int main() {
          int i; int a[4];
          for(i=0;i<4;i++) a[i] = 7;
          #pragma acc parallel loop copyin(a[0:4])
          for(i=0;i<4;i++) a[i] = 0;
          if (a[0] != 7) return 0;
          return 1;
        }
        """
        diags = lint_c(src)
        # the unread copyin is also dead (ACC406); the interesting part
        # is that the stale read is a warning, not an error
        acc401 = [d for d in diags if d.code == "ACC401"]
        assert len(acc401) == 1
        assert acc401[0].severity is Severity.WARNING
        assert "discarded" in acc401[0].message

    def test_acc402_read_of_stale_device_copy(self):
        src = """
        int main() {
          int i; int a[4]; int b[4];
          #pragma acc data create(a[0:4]) copyout(b[0:4])
          {
            for(i=0;i<4;i++) a[i] = i;
            #pragma acc parallel loop present(a[0:4])
            for(i=0;i<4;i++) b[i] = a[i];
          }
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC402"]
        assert diags[0].severity is Severity.ERROR

    def test_acc402_update_device_restores_coherence(self):
        src = """
        int main() {
          int i; int a[4]; int b[4];
          #pragma acc data create(a[0:4]) copyout(b[0:4])
          {
            for(i=0;i<4;i++) a[i] = i;
            #pragma acc update device(a[0:4])
            #pragma acc parallel loop present(a[0:4])
            for(i=0;i<4;i++) b[i] = a[i];
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc402_not_charged_when_same_kernel_writes(self):
        # scratch arrays initialised and consumed in one region are fine
        src = """
        int main() {
          int i; int t[4]; int b[4];
          #pragma acc data create(t[0:4]) copyout(b[0:4])
          {
            #pragma acc parallel loop
            for(i=0;i<4;i++) { t[i] = i; b[i] = t[i] + 1; }
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc403_dead_copyout(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copyout(a[0:4])
          {
            i = 0;
          }
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC403"]
        assert diags[0].severity is Severity.WARNING

    def test_acc403_written_copyout_is_clean(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copyout(a[0:4])
          {
            #pragma acc parallel loop
            for(i=0;i<4;i++) a[i] = i;
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc404_conflicting_nested_clause(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            #pragma acc data copyin(a[0:4])
            {
              #pragma acc parallel loop
              for(i=0;i<4;i++) a[i] = i;
            }
          }
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC404"]
        assert diags[0].severity is Severity.ERROR

    def test_acc404_nested_present_is_clean(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            #pragma acc data present(a[0:4])
            {
              #pragma acc parallel loop
              for(i=0;i<4;i++) a[i] = i;
            }
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc405_update_without_device_copy(self):
        src = """
        int main() {
          int i; int a[4];
          for(i=0;i<4;i++) a[i] = i;
          #pragma acc update device(a[0:4])
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC405"]
        assert diags[0].severity is Severity.WARNING

    def test_acc405_update_inside_data_region_is_clean(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            for(i=0;i<4;i++) a[i] = i;
            #pragma acc update device(a[0:4])
            #pragma acc parallel loop
            for(i=0;i<4;i++) a[i] = a[i] + 1;
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc406_dead_copyin(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copyin(a[0:4])
          {
            #pragma acc parallel loop
            for(i=0;i<4;i++) a[i] = 0;
          }
          return 1;
        }
        """
        diags = lint_c(src)
        assert "ACC406" in codes(diags)
        acc406 = [d for d in diags if d.code == "ACC406"]
        assert acc406[0].severity is Severity.WARNING

    def test_acc406_read_copyin_is_clean(self):
        src = """
        int main() {
          int i; int a[4]; int b[4];
          #pragma acc data copyin(a[0:4]) copyout(b[0:4])
          {
            #pragma acc parallel loop
            for(i=0;i<4;i++) b[i] = a[i];
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_declare_scratch_divergence_is_warning(self):
        # others.py's declare-create scratch idiom: host and device copies
        # deliberately diverge; the lint may warn but must not error
        src = """
        int main() {
          int i; int t[4]; int b[4];
          #pragma acc declare create(t)
          for(i=0;i<4;i++) t[i] = -3;
          #pragma acc parallel loop copyout(b[0:4]) present(t)
          for(i=0;i<4;i++) { t[i] = i; b[i] = t[i]; }
          if (t[0] != -3) return 0;
          return 1;
        }
        """
        diags = lint_c(src)
        assert all(d.severity is not Severity.ERROR for d in diags)

    def test_fortran_surface_is_checked(self):
        src = """
        program t
          integer :: i
          integer :: a(4)
          !$acc data copy(a)
          !$acc parallel loop
          do i = 1, 4
            a(i) = i
          end do
          i = a(1)
          !$acc end data
          main = 1
        end program t
        """
        diags = lint_f(src)
        assert codes(diags) == ["ACC401"]
        assert diags[0].loc.line == 10


# ---------------------------------------------------------------------------
# pass 5: async/wait happens-before (ACC5xx)
# ---------------------------------------------------------------------------


class TestAsyncGraph:
    def test_acc501_cross_queue_write_write(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            #pragma acc parallel loop async(1)
            for(i=0;i<4;i++) a[i] = i;
            #pragma acc parallel loop async(2)
            for(i=0;i<4;i++) a[i] = a[i] + 1;
          }
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC501"]
        assert diags[0].severity is Severity.ERROR

    def test_acc501_wait_between_queues_is_clean(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            #pragma acc parallel loop async(1)
            for(i=0;i<4;i++) a[i] = i;
            #pragma acc wait(1)
            #pragma acc parallel loop async(2)
            for(i=0;i<4;i++) a[i] = a[i] + 1;
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc501_same_queue_is_ordered(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            #pragma acc parallel loop async(1)
            for(i=0;i<4;i++) a[i] = i;
            #pragma acc parallel loop async(1)
            for(i=0;i<4;i++) a[i] = a[i] + 1;
          }
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc501_constant_propagated_tags(self):
        # the runtime_api idiom: int tag = 2; async(tag)
        src = """
        int main() {
          int i; int a[4]; int t1 = 1; int t2 = 2;
          #pragma acc data copy(a[0:4])
          {
            #pragma acc parallel loop async(t1)
            for(i=0;i<4;i++) a[i] = i;
            #pragma acc parallel loop async(t2)
            for(i=0;i<4;i++) a[i] = a[i] + 1;
          }
          return 1;
        }
        """
        assert codes(lint_c(src)) == ["ACC501"]

    def test_unresolvable_tags_stay_silent(self):
        # queue identity unknown -> never speculate a race
        src = """
        int main(int q) {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            #pragma acc parallel loop async(q)
            for(i=0;i<4;i++) a[i] = i;
            #pragma acc parallel loop async(q + 1)
            for(i=0;i<4;i++) a[i] = a[i] + 1;
          }
          return 1;
        }
        """
        assert "ACC501" not in codes(lint_c(src))

    def test_acc502_wait_on_unused_queue(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc parallel loop copy(a[0:4]) async(1)
          for(i=0;i<4;i++) a[i] = i;
          #pragma acc wait(2)
          #pragma acc wait(1)
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC502"]
        assert diags[0].severity is Severity.WARNING

    def test_acc502_wait_on_used_queue_is_clean(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc parallel loop copy(a[0:4]) async(1)
          for(i=0;i<4;i++) a[i] = i;
          #pragma acc wait(1)
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_acc502_bare_wait_without_async(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc parallel loop copy(a[0:4])
          for(i=0;i<4;i++) a[i] = i;
          #pragma acc wait
          return 1;
        }
        """
        assert codes(lint_c(src)) == ["ACC502"]

    def test_acc503_host_read_before_wait(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc parallel loop copy(a[0:4]) async(1)
          for(i=0;i<4;i++) a[i] = i;
          if (a[0] != 0) return 0;
          #pragma acc wait(1)
          return 1;
        }
        """
        diags = lint_c(src)
        assert codes(diags) == ["ACC503"]
        assert diags[0].severity is Severity.WARNING

    def test_acc503_wait_before_host_read_is_clean(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc parallel loop copy(a[0:4]) async(1)
          for(i=0;i<4;i++) a[i] = i;
          #pragma acc wait(1)
          if (a[0] != 0) return 0;
          return 1;
        }
        """
        assert lint_c(src) == []

    def test_data_region_exit_is_implicit_sync(self):
        src = """
        int main() {
          int i; int a[4];
          #pragma acc data copy(a[0:4])
          {
            #pragma acc parallel loop async(1)
            for(i=0;i<4;i++) a[i] = i;
          }
          if (a[0] != 0) return 0;
          return 1;
        }
        """
        assert "ACC503" not in codes(lint_c(src))


# ---------------------------------------------------------------------------
# inline suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    _C_STALE_READ = """
int main() {
  int i; int a[4];
  #pragma acc data copy(a[0:4])
  {
    #pragma acc parallel loop
    for(i=0;i<4;i++) a[i] = i;
    if (a[0] != 0) return 0;%s
  }
  return 1;
}
"""

    def test_same_line_disable(self):
        src = self._C_STALE_READ % "  // acc-lint: disable=ACC401"
        assert lint_c(src) == []

    def test_next_line_disable(self):
        src = """
int main() {
  int i; int a[4];
  #pragma acc data copy(a[0:4])
  {
    #pragma acc parallel loop
    for(i=0;i<4;i++) a[i] = i;
    // acc-lint: disable-next-line=ACC401
    if (a[0] != 0) return 0;
  }
  return 1;
}
"""
        assert lint_c(src) == []

    def test_file_disable(self):
        src = ("// acc-lint: disable-file=ACC401\n"
               + self._C_STALE_READ % "")
        assert lint_c(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = self._C_STALE_READ % "  // acc-lint: disable=ACC402"
        assert codes(lint_c(src)) == ["ACC401"]

    def test_fortran_comment_syntax(self):
        src = """
        program t
          integer :: i
          integer :: a(4)
          !$acc data copy(a)
          !$acc parallel loop
          do i = 1, 4
            a(i) = i
          end do
          ! acc-lint: disable-next-line=ACC401
          i = a(1)
          !$acc end data
          main = 1
        end program t
        """
        assert lint_f(src) == []

    def test_acc_directive_sentinel_is_not_a_comment(self):
        # "!$acc ..." must never be parsed as a suppression comment
        s = parse_suppressions("!$acc parallel acc-lint: disable=ACC401\n")
        assert not s.file_codes and not s.line_codes

    def test_multiple_codes_one_comment(self):
        s = parse_suppressions(
            "// acc-lint: disable-file=ACC401, ACC502\n")
        assert s.file_codes == {"ACC401", "ACC502"}

    def test_unknown_codes_are_ignored(self):
        s = parse_suppressions("// acc-lint: disable-file=ACC999\n")
        assert not s.file_codes

    def test_apply_reports_suppressed_count(self):
        src = self._C_STALE_READ % ""
        raw = lint_c(src)
        kept, dropped = apply_suppressions(
            raw, "// acc-lint: disable-file=ACC401\n")
        assert kept == [] and dropped == 1


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def _finding(self, code="ACC401"):
        raw = lint_source("""
int main() {
  int i; int a[4];
  #pragma acc data copy(a[0:4])
  {
    #pragma acc parallel loop
    for(i=0;i<4;i++) a[i] = i;
    if (a[0] != 0) return 0;
  }
  return 1;
}
""", language="c", name="probe.c")
        assert codes(raw) == [code]
        return raw[0]

    def test_round_trip(self):
        d = self._finding()
        baseline = baseline_from_findings([("probe.c", d)])
        back = loads_baseline(baseline.render())
        assert back.entries == baseline.entries
        assert back.allowance("probe.c", "ACC401") == 1

    def test_apply_is_count_capped(self):
        d = self._finding()
        baseline = baseline_from_findings([("probe.c", d)])
        kept, dropped = baseline.apply("probe.c", [d, d])
        assert len(kept) == 1 and dropped == 1

    def test_other_template_not_covered(self):
        d = self._finding()
        baseline = baseline_from_findings([("probe.c", d)])
        kept, dropped = baseline.apply("other.c", [d])
        assert len(kept) == 1 and dropped == 0

    def test_shipped_baseline_covers_the_corpus(self):
        baseline = shipped_baseline()
        assert baseline.total > 0
        # every allowance is exercised by an actual raw finding
        suites = [openacc10_suite(), openacc20_suite(), combination_suite()]
        raw_by_name = {}
        for suite in suites:
            for t in suite:
                found = {}
                for d in lint_template_raw(t):
                    found[d.code] = found.get(d.code, 0) + 1
                if found:
                    raw_by_name[t.name] = found
        assert raw_by_name == baseline.entries


# ---------------------------------------------------------------------------
# incremental lint cache
# ---------------------------------------------------------------------------


class TestLintCache:
    def test_cold_then_warm(self, tmp_path):
        path = tmp_path / "cache.json"
        suite = openacc10_suite()
        cold = LintCache(path)
        report_cold = lint_suite(suite, cache=cold)
        cold.save()
        assert cold.hits == 0 and cold.misses == report_cold.checked

        warm = LintCache(path)
        report_warm = lint_suite(suite, cache=warm)
        assert warm.misses == 0 and warm.hits == report_warm.checked

    def test_warm_output_is_byte_identical_and_faster(self, tmp_path):
        path = tmp_path / "cache.json"
        suite = openacc10_suite()

        t0 = time.perf_counter()
        cold = LintCache(path)
        cold_json = render_lint_json(lint_suite(suite, cache=cold))
        cold.save()
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_json = render_lint_json(
            lint_suite(suite, cache=LintCache(path)))
        warm_s = time.perf_counter() - t0

        assert warm_json == cold_json
        assert cold_s / max(warm_s, 1e-9) >= 10.0

    def test_catalog_version_invalidates(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = LintCache(path)
        t = template("int main() { return 1; }\n")
        cache.store(t, [])
        cache.save()

        payload = json.loads(path.read_text())
        payload["catalog_version"] = "0" * 16
        path.write_text(json.dumps(payload))

        reloaded = LintCache(path)
        assert reloaded.stale
        assert reloaded.lookup(t) is None

    def test_diagnostics_round_trip_losslessly(self, tmp_path):
        t = template("""
int main() {
  int i; int a[4];
  #pragma acc data copy(a[0:4])
  {
    #pragma acc parallel loop
    for(i=0;i<4;i++) a[i] = i;
    if (a[0] != 0) return 0;
  }
  return 1;
}
""")
        raw = lint_template_raw(t)
        assert raw  # the fixture produces a finding
        path = tmp_path / "cache.json"
        cache = LintCache(path)
        cache.store(t, raw)
        cache.save()
        back = LintCache(path).lookup(t)
        assert back == raw

    def test_content_change_misses(self, tmp_path):
        a = template("int main() { return 1; }\n")
        b = template("int main() { return 2; }\n")
        assert template_key(a) != template_key(b)
        cache = LintCache(tmp_path / "cache.json")
        cache.store(a, [])
        assert cache.lookup(b) is None

    def test_obs_counters(self, tmp_path):
        metrics = MetricsRegistry()
        cache = LintCache(tmp_path / "cache.json", metrics=metrics)
        t = template("int main() { return 1; }\n")
        assert cache.lookup(t) is None
        cache.store(t, [])
        assert cache.lookup(t) == []
        counters = metrics.snapshot()["counters"]
        assert counters.get("lint.cache.miss") == 1
        assert counters.get("lint.cache.hit") == 1
        assert "1 hit(s), 1 miss(es)" in cache.stats()

    def test_catalog_version_is_stable(self):
        assert catalog_version() == catalog_version()
        assert len(catalog_version()) == 16


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------


class TestSarif:
    def test_corpus_sarif_is_schema_valid(self):
        report = merge_reports([
            lint_suite(openacc10_suite()),
            lint_suite(openacc20_suite()),
            lint_suite(combination_suite()),
        ])
        payload = sarif_report(report)
        assert validate_sarif(payload) == []
        assert payload["version"] == "2.1.0"

    def test_findings_become_results(self):
        t = template("""
int main() {
  int i; int a[4];
  #pragma acc data copy(a[0:4])
  {
    #pragma acc parallel loop async(1)
    for(i=0;i<4;i++) a[i] = i;
    #pragma acc parallel loop async(2)
    for(i=0;i<4;i++) a[i] = a[i] + 1;
  }
  return 1;
}
""", name="racy.c", feature="parallel.async")
        report = lint_suite(openacc10_suite(), templates=[t], baseline=None)
        payload = sarif_report(report)
        assert validate_sarif(payload) == []
        results = payload["runs"][0]["results"]
        assert len(results) == 1
        result = results[0]
        assert result["ruleId"] == "ACC501"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "racy.c"
        assert loc["region"]["startLine"] >= 1

    def test_rules_cover_the_catalog(self):
        from repro.staticcheck import CODE_CATALOG

        payload = sarif_report(lint_suite(openacc10_suite(), templates=[]))
        rules = payload["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted(CODE_CATALOG)

    def test_render_ends_with_newline(self):
        text = render_lint_sarif(lint_suite(openacc10_suite(), templates=[]))
        assert text.endswith("\n")
        json.loads(text)

    def test_validator_rejects_bad_version(self):
        payload = sarif_report(lint_suite(openacc10_suite(), templates=[]))
        payload["version"] = "2.0.0"
        assert any("version" in p for p in validate_sarif(payload))

    def test_validator_rejects_incoherent_rule_index(self):
        t = template("""
int main() {
  int i; int a[4];
  #pragma acc parallel loop copy(a[0:4]) async(1)
  for(i=0;i<4;i++) a[i] = i;
  #pragma acc wait(2)
  #pragma acc wait(1)
  return 1;
}
""")
        payload = sarif_report(
            lint_suite(openacc10_suite(), templates=[t], baseline=None))
        payload["runs"][0]["results"][0]["ruleIndex"] = 0
        assert any("ruleIndex" in p for p in validate_sarif(payload))

    def test_validator_rejects_zero_start_line(self):
        t = template("""
int main() {
  int i; int a[4];
  #pragma acc parallel loop copy(a[0:4]) async(1)
  for(i=0;i<4;i++) a[i] = i;
  #pragma acc wait(2)
  #pragma acc wait(1)
  return 1;
}
""")
        payload = sarif_report(
            lint_suite(openacc10_suite(), templates=[t], baseline=None))
        result = payload["runs"][0]["results"][0]
        result["locations"][0]["physicalLocation"]["region"] = {
            "startLine": 0,
        }
        assert any("startLine" in p for p in validate_sarif(payload))

    def test_validator_rejects_missing_message(self):
        t = template("""
int main() {
  int i; int a[4];
  #pragma acc parallel loop copy(a[0:4]) async(1)
  for(i=0;i<4;i++) a[i] = i;
  #pragma acc wait(2)
  #pragma acc wait(1)
  return 1;
}
""")
        payload = sarif_report(
            lint_suite(openacc10_suite(), templates=[t], baseline=None))
        payload["runs"][0]["results"][0]["message"] = {}
        assert any("message" in p for p in validate_sarif(payload))


# ---------------------------------------------------------------------------
# full-corpus invariants
# ---------------------------------------------------------------------------


class TestCorpusModuloBaseline:
    def test_full_corpus_is_clean_modulo_baseline(self):
        report = merge_reports([
            lint_suite(openacc10_suite()),
            lint_suite(openacc20_suite()),
            lint_suite(combination_suite()),
        ])
        assert report.checked > 200
        assert report.codes() == {}
        assert report.error_count == 0

    def test_baseline_is_doing_real_work(self):
        # the raw view is NOT clean: the baseline carries the testsuite's
        # deliberate divergence probes (copyin discard, async probes)
        with_baseline = lint_suite(openacc10_suite())
        raw = lint_suite(openacc10_suite(), baseline=None)
        assert with_baseline.baselined > 0
        assert raw.diagnostics
        # but even raw, nothing is error severity (gate stays byte-stable)
        assert raw.error_count == 0


# ---------------------------------------------------------------------------
# differential oracle: accsim vs the async pass
# ---------------------------------------------------------------------------


class TestDifferentialOracle:
    def _divergent_templates(self, suite):
        """Templates whose functional result changes when async queues
        are executed eagerly (i.e. accsim says timing is observable)."""
        ref = Compiler()
        eager = Compiler(CompilerBehavior(ignore_async=True))
        out = []
        for t in suite:
            if "async" not in t.code and "wait" not in t.code:
                continue
            src = generate_functional(t).source
            a = ref.compile(src, t.language).run().value
            b = eager.compile(src, t.language).run().value
            if a != b:
                out.append(t)
        return out

    def test_accsim_divergence_implies_async_finding(self):
        divergent = self._divergent_templates(openacc10_suite())
        # non-vacuous: the suite ships deliberate async-visibility probes
        assert len(divergent) >= 4
        for t in divergent:
            async_codes = {d.code for d in lint_template_raw(t)
                           if d.code.startswith("ACC5")}
            assert async_codes, (
                f"{t.name} is timing-observable under accsim but the "
                f"async pass found nothing"
            )

    def test_hand_built_race_diverges_and_is_flagged(self):
        t = template("""
int main() {
  int i; int a[4];
  for(i=0;i<4;i++) a[i] = 0;
  #pragma acc parallel loop copy(a[0:4]) async(1)
  for(i=0;i<4;i++) a[i] = 9;
  if (a[0] != 0) return 0;
  #pragma acc wait(1)
  return 1;
}
""", name="probe_race.c")
        src = generate_functional(t).source
        ref = Compiler().compile(src, "c").run().value
        eager = Compiler(CompilerBehavior(ignore_async=True)) \
            .compile(src, "c").run().value
        assert ref != eager  # accsim sees the timing dependence...
        assert any(d.code.startswith("ACC5")
                   for d in lint_template_raw(t))  # ...and so do we


# ---------------------------------------------------------------------------
# CLI: --select/--ignore, sarif, baseline and cache flags
# ---------------------------------------------------------------------------


class TestLintCliNewFlags:
    def test_unknown_select_code_suggests_and_fails(self, capsys):
        from repro.cli import main

        assert main(["lint", "--select", "ACC40X"]) == 1
        err = capsys.readouterr().err
        assert "unknown diagnostic code" in err
        assert "did you mean 'ACC406'" in err

    def test_unknown_ignore_code_fails(self, capsys):
        from repro.cli import main

        assert main(["lint", "--ignore", "AC501"]) == 1
        assert "did you mean" in capsys.readouterr().err

    def test_select_prefix_expands(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "lint.json"
        assert main(["lint", "--all", "--no-baseline", "--select", "ACC5",
                     "--format", "json", "--output", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["diagnostics"]
        assert all(d["code"].startswith("ACC5")
                   for d in payload["diagnostics"])

    def test_ignore_drops_codes(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "lint.json"
        assert main(["lint", "--all", "--no-baseline",
                     "--ignore", "ACC401,ACC503",
                     "--format", "json", "--output", str(path)]) == 0
        payload = json.loads(path.read_text())
        seen = set(payload["codes"])
        assert "ACC401" not in seen and "ACC503" not in seen

    def test_sarif_output_validates(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "lint.sarif"
        assert main(["lint", "--all", "--format", "sarif",
                     "--output", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert validate_sarif(payload) == []

    def test_update_baseline_reproduces_shipped(self, tmp_path):
        from pathlib import Path

        from repro.cli import main
        import repro.staticcheck.suppress as suppress

        path = tmp_path / "baseline.json"
        assert main(["lint", "--all", "--baseline", str(path),
                     "--update-baseline"]) == 0
        assert path.read_text() == Path(suppress._SHIPPED_PATH).read_text()

    def test_cache_flag_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        cache = tmp_path / "cache.json"
        out1 = tmp_path / "a.json"
        out2 = tmp_path / "b.json"
        assert main(["lint", "--format", "json", "--cache", str(cache),
                     "--output", str(out1)]) == 0
        err1 = capsys.readouterr().err
        assert "0 hit(s)" in err1
        assert main(["lint", "--format", "json", "--cache", str(cache),
                     "--output", str(out2)]) == 0
        err2 = capsys.readouterr().err
        assert "0 miss(es)" in err2
        assert out1.read_text() == out2.read_text()


# ---------------------------------------------------------------------------
# harness gate: new codes attribute as STATIC_ERROR
# ---------------------------------------------------------------------------


_RACY_TEMPLATE = """
int main() {
  int i; int a[4];
  #pragma acc data copy(a[0:4])
  {
    #pragma acc parallel loop async(1)
    for(i=0;i<4;i++) a[i] = i;
    #pragma acc parallel loop async(2)
    for(i=0;i<4;i++) a[i] = a[i] + 1;
  }
  return 1;
}
"""


class TestHarnessGateNewCodes:
    def test_acc501_attributes_as_static_error(self):
        t = template(_RACY_TEMPLATE, name="racy.c")
        runner = ValidationRunner(config=HarnessConfig(iterations=1,
                                                       lint=True))
        result = runner.run_template(t)
        assert not result.passed
        assert result.failure_kind is FailureKind.STATIC_ERROR
        assert "ACC501" in result.functional.failure_detail()
        assert result.functional.iterations == []

    def test_warning_codes_do_not_trip_the_gate(self):
        # ACC503 is warning severity; the gate only stops on errors
        t = template("""
int main() {
  int i; int a[4];
  #pragma acc parallel loop copy(a[0:4]) async(1)
  for(i=0;i<4;i++) a[i] = i;
  if (a[0] != 0) return 0;
  #pragma acc wait(1)
  return 1;
}
""", name="probe.c")
        runner = ValidationRunner(config=HarnessConfig(iterations=1,
                                                       lint=True))
        result = runner.run_template(t)
        assert result.failure_kind is not FailureKind.STATIC_ERROR

    def test_obs_counter_for_new_code(self):
        from repro.obs import Tracer

        tracer = Tracer()
        t = template(_RACY_TEMPLATE, name="racy.c")
        runner = ValidationRunner(
            config=HarnessConfig(iterations=1, lint=True), tracer=tracer)
        runner.run_template(t)
        counters = tracer.metrics.snapshot()["counters"]
        assert counters.get("lint.diagnostic.ACC501") == 1


# ---------------------------------------------------------------------------
# satellite: combined-construct clause inheritance in the dependence pass
# ---------------------------------------------------------------------------


class TestCombinedClauseInheritance:
    """Audit result: clauses written on a combined construct
    (``parallel loop`` / ``kernels loop``) are honoured by the
    dependence pass exactly as if they were split across the construct
    and the loop.  These document the audited behaviour."""

    def test_reduction_on_combined_construct_suppresses_acc202(self):
        src = """
        int main() {
          int i, s = 0; int a[4];
          #pragma acc parallel loop copy(a[0:4]) reduction(+:s)
          for(i=0;i<4;i++) s = s + a[i];
          return 1;
        }
        """
        assert "ACC202" not in codes(lint_c(src))

    def test_private_on_combined_construct_suppresses_acc203(self):
        src = """
        int main() {
          int i, t; int a[4];
          #pragma acc parallel loop copy(a[0:4]) private(t)
          for(i=0;i<4;i++) { t = i; a[i] = t; }
          return 1;
        }
        """
        assert "ACC203" not in codes(lint_c(src))

    def test_independent_on_combined_kernels_loop_still_checked(self):
        src = """
        int main() {
          int i; int a[8];
          #pragma acc kernels loop copy(a[0:8]) independent
          for(i=1;i<8;i++) a[i] = a[i-1] + 1;
          return 1;
        }
        """
        assert "ACC201" in codes(lint_c(src))

    def test_data_clause_on_combined_construct_reaches_dataenv(self):
        # copyin on the combined construct is seen by the ACC4xx pass:
        # the kernel only writes, so the copyin is dead
        src = """
        int main() {
          int i; int a[4];
          #pragma acc parallel loop copyin(a[0:4])
          for(i=0;i<4;i++) a[i] = 0;
          return 1;
        }
        """
        assert "ACC406" in codes(lint_c(src))
