"""Tests for live campaign telemetry (repro.obs.live).

Covers the PR's acceptance criteria:

* the bounded bus: sequence stamping, eviction + dropped accounting,
  sink fan-out;
* ``unit_fields``/``ProgressTally`` mirror the ``build_metrics`` skip
  rule, so a tally folded from the stream reconciles *exactly* with the
  report's :class:`~repro.harness.engine.RunMetrics` integers;
* snapshots are monotone (units_done, wall clock) under an injected
  clock and in real streams;
* reports are byte-identical with telemetry on or off, across all three
  execution policies and both interpreter backends;
* journal resume: replayed units count toward progress and are marked
  ``replayed``; the resumed report matches an uninterrupted run;
* the tolerant reader: a torn tail is skipped and counted, a wrong
  format tag raises either way; ``repro obs tail`` survives both;
* Prometheus rendering passes its own linter, and the linter catches
  broken exposition text;
* the CLI surface: ``validate --live-stream/--status/--prom``,
  ``repro obs tail``/``repro obs perf``, and ``benchmarks.record``'s
  perf-history appending.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.compiler.vendors import vendor_version
from repro.faults import FaultPlan, InjectedJournalTear
from repro.harness import (
    HarnessConfig,
    ValidationRunner,
    render_csv,
    render_text,
)
from repro.harness.runner import IterationOutcome, PhaseResult
from repro.harness.runner import TestResult as _TestResult
from repro.obs import Tracer
from repro.obs.live import (
    LIVE_FORMAT,
    LiveTelemetry,
    NDJSONStreamSink,
    ProgressTally,
    SnapshotReporter,
    StatusLineSink,
    TelemetryBus,
    lint_prometheus,
    parse_live,
    read_live,
    render_prometheus,
    render_status_line,
    render_tally_text,
    unit_fields,
)

_PGI = vendor_version("pgi", "13.2").behavior("c")


def _quick_config(**kw) -> HarnessConfig:
    base = dict(iterations=1, run_cross=False, languages=("c",),
                feature_prefixes=["parallel"])
    base.update(kw)
    return HarnessConfig(**base)


# ---------------------------------------------------------------------------
# the bus
# ---------------------------------------------------------------------------


def test_bus_stamps_sequence_and_bounds_memory():
    bus = TelemetryBus(capacity=4)
    for i in range(10):
        bus.publish("tick", i=i)
    records = bus.records()
    assert len(records) == 4
    assert bus.dropped == 6
    # sequence numbers keep counting across evictions
    assert [r["seq"] for r in records] == [6, 7, 8, 9]
    assert records[-1]["fields"] == {"i": 9}


def test_bus_fans_out_to_sinks():
    bus = TelemetryBus()
    seen = []

    class Sink:
        def emit(self, record):
            seen.append(record)

    bus.subscribe(Sink())
    bus.publish("a", x=1)
    bus.publish("b")
    assert [r["kind"] for r in seen] == ["a", "b"]


# ---------------------------------------------------------------------------
# unit fields mirror the build_metrics skip rule
# ---------------------------------------------------------------------------


def _result(template, functional, cross=None, elapsed=0.5):
    return _TestResult(template=template, functional=functional,
                       cross=cross, elapsed_s=elapsed)


def test_unit_fields_skip_harness_error_phases(suite10):
    template = suite10.get("parallel", "c")
    broken = PhaseResult(mode="functional", source="",
                         harness_error="worker died",
                         iterations=[IterationOutcome(ok=True, value=0)],
                         compile_s=9.0, run_s=9.0, cache_hit=True)
    ok = PhaseResult(mode="cross", source="", cache_hit=True,
                     iterations=[IterationOutcome(ok=True, value=0)],
                     compile_s=0.1, run_s=0.2)
    fields = unit_fields(0, "parallel:c", _result(template, broken, ok))
    # the harness-errored phase contributes nothing to the totals...
    assert fields["iterations"] == 1
    assert fields["compile_cache_hits"] == 1
    assert fields["compile_cache_misses"] == 0
    assert fields["compile_s"] == pytest.approx(0.1)
    assert fields["run_s"] == pytest.approx(0.2)
    # ...but is still visible in the per-phase verdicts
    assert fields["phases"]["functional"]["harness_error"] is True
    assert fields["phases"]["cross"]["ok"] is True
    assert fields["passed"] is False
    assert fields["failure_kind"] == "harness_error"


def test_unit_fields_lowering_cache(suite10):
    template = suite10.get("parallel", "c")
    hit = PhaseResult(mode="functional", source="", lower_hit=True,
                      iterations=[IterationOutcome(ok=True, value=0)])
    fields = unit_fields(0, "u", _result(template, hit))
    assert fields["lower_cache_hits"] == 1
    assert fields["lower_cache_misses"] == 0
    # tree backend: lower_hit is None -> neither counter moves
    tree = PhaseResult(mode="functional", source="",
                       iterations=[IterationOutcome(ok=True, value=0)])
    fields = unit_fields(0, "u", _result(template, tree))
    assert fields["lower_cache_hits"] == 0
    assert fields["lower_cache_misses"] == 0


# ---------------------------------------------------------------------------
# tally + snapshots
# ---------------------------------------------------------------------------


def _unit_event(**fields):
    base = {"unit": "u", "index": 0, "replayed": False, "backend": "tree",
            "passed": True, "failure_kind": None, "elapsed_s": 0.25,
            "iterations": 2, "compile_cache_hits": 1,
            "compile_cache_misses": 0, "lower_cache_hits": 0,
            "lower_cache_misses": 0, "compile_s": 0.1, "run_s": 0.1,
            "phases": {"functional": {"ok": True, "harness_error": False,
                                      "static_error": False}}}
    base.update(fields)
    return {"type": "event", "kind": "unit.finished", "fields": base}


def test_tally_folds_campaign_events():
    tally = ProgressTally()
    tally.fold({"type": "event", "kind": "campaign.start",
                "fields": {"total_units": 3}})
    tally.fold({"type": "event", "kind": "campaign.extend",
                "fields": {"units": 2}})
    tally.fold(_unit_event(replayed=True))
    tally.fold(_unit_event(passed=False, failure_kind="wrong_value",
                           phases={"functional": {
                               "ok": False, "harness_error": False,
                               "static_error": False}}))
    tally.fold({"type": "event", "kind": "engine.retry", "fields": {}})
    tally.fold({"type": "event", "kind": "titan.quarantined", "fields": {}})
    # snapshots are ignored by the fold (they are derived, not source)
    tally.fold({"type": "snapshot", "units_done": 99})
    assert tally.total_units == 5
    assert tally.units_done == 2
    assert tally.replayed == 1
    assert tally.passed == 1 and tally.failed == 1
    assert tally.failure_kinds == {"wrong_value": 1}
    assert tally.retries == 1 and tally.quarantined == 1
    assert tally.phase_counts["functional"] == {
        "pass": 1, "fail": 1, "harness_error": 0, "static_error": 0}
    assert tally.backend_timing["tree"][0] == 2


def test_snapshots_are_monotone_under_injected_clock():
    now = [100.0]
    reporter = SnapshotReporter(every_units=1, min_interval_s=1.0,
                                clock=lambda: now[0])
    reporter.begin()
    snaps = []
    for i in range(6):
        reporter.tally.fold({"type": "event", "kind": "campaign.start",
                             "fields": {"total_units": 6}})
        reporter.tally.fold(_unit_event(index=i))
        # only every other fold advances past the interval throttle
        if i % 2:
            now[0] += 1.5
        if reporter.due():
            snaps.append(reporter.snapshot())
    snaps.append(reporter.snapshot(final=True))
    assert snaps[-1]["final"] is True
    done = [s["units_done"] for s in snaps]
    walls = [s["wall_s"] for s in snaps]
    assert done == sorted(done)
    assert walls == sorted(walls)
    assert all(0.0 <= s["progress"] <= 1.0 for s in snaps)
    # the interval throttle actually suppressed some snapshots
    assert len(snaps) < 7


def test_snapshot_units_per_sec_counts_fresh_units_only():
    now = [0.0]
    reporter = SnapshotReporter(clock=lambda: now[0])
    reporter.begin()
    reporter.tally.fold({"type": "event", "kind": "campaign.start",
                         "fields": {"total_units": 4}})
    reporter.tally.fold(_unit_event(replayed=True))
    reporter.tally.fold(_unit_event())
    now[0] = 2.0
    snap = reporter.snapshot()
    # 1 fresh unit in 2s; the replayed unit cost no wall time
    assert snap["units_per_sec"] == pytest.approx(0.5)
    assert snap["units_done"] == 2 and snap["replayed"] == 1
    assert snap["eta_s"] == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# byte-identical reports, on or off
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy,workers", [
    ("serial", 1), ("thread", 2), ("process", 2),
])
@pytest.mark.parametrize("backend", ["tree", "closures"])
def test_reports_identical_with_and_without_telemetry(
        tmp_path, suite10, policy, workers, backend):
    plain = ValidationRunner(_PGI, _quick_config(
        policy=policy, workers=workers, backend=backend))
    baseline = plain.run_suite(suite10)

    stream = tmp_path / "run.ndjson"
    prom = tmp_path / "run.prom"
    live = ValidationRunner(_PGI, _quick_config(
        policy=policy, workers=workers, backend=backend,
        live_stream=str(stream), prom=str(prom)))
    observed = live.run_suite(suite10)

    assert render_csv(observed) == render_csv(baseline)
    assert render_text(observed) == render_text(baseline)

    parsed = read_live(str(stream))
    assert parsed.meta["format"] == LIVE_FORMAT
    assert parsed.meta["policy"] == policy
    final = parsed.final_snapshot
    assert final is not None
    assert final["units_done"] == final["total_units"] == \
        len(baseline.results)
    assert lint_prometheus(prom.read_text()) == []


def test_stream_reconciles_exactly_with_run_metrics(tmp_path, suite10):
    stream = tmp_path / "run.ndjson"
    runner = ValidationRunner(_PGI, HarnessConfig(
        iterations=2, languages=("c",), feature_prefixes=["parallel", "loop"],
        live_stream=str(stream)))
    report = runner.run_suite(suite10)
    metrics = report.metrics

    parsed = read_live(str(stream))
    tally = parsed.tally()
    # integer totals folded from per-unit events match the report exactly
    assert tally.units_done == metrics.templates == len(report.results)
    assert tally.iterations_run == metrics.iterations_run
    assert tally.compile_cache_hits == metrics.cache_hits
    assert tally.compile_cache_misses == metrics.cache_misses
    assert tally.failure_kinds == metrics.failure_kinds
    assert tally.failed == len(report.failures())
    assert tally.passed == len(report.results) - tally.failed
    # floats come from the authoritative run_metrics block of the final
    # snapshot (summation order differs across policies)
    final = parsed.final_snapshot
    assert final["run_metrics"]["wall_s"] == metrics.wall_s
    assert final["run_metrics"]["compile_s"] == metrics.compile_s
    assert final["run_metrics"]["iterations_run"] == metrics.iterations_run
    # the in-stream snapshots agree with the report too
    assert final["passed"] == tally.passed
    assert final["iterations_run"] == metrics.iterations_run
    # monotone in the real stream as well
    done = [s["units_done"] for s in parsed.snapshots()]
    assert done == sorted(done)


def test_live_telemetry_survives_engine_exception(tmp_path, suite10):
    stream = tmp_path / "run.ndjson"
    config = _quick_config(
        live_stream=str(stream),
        fault_plan=FaultPlan.parse("stall=1.0,seed=1"),
        template_timeout_s=0.0001,
    )
    # a 100% stall plan with a tiny budget: every unit times out but the
    # run completes; the point is the sink is closed with a final snapshot
    runner = ValidationRunner(_PGI, config)
    report = runner.run_suite(suite10)
    parsed = read_live(str(stream))
    assert parsed.final_snapshot is not None
    assert parsed.final_snapshot["units_done"] == len(report.results)


# ---------------------------------------------------------------------------
# journal resume: replayed units count toward progress
# ---------------------------------------------------------------------------


def test_resume_marks_replayed_units(tmp_path, suite10):
    from repro.journal import JournalWriter, validate_campaign_key

    plan = FaultPlan.parse("journal=0.3,seed=7,max-fires=1")
    config = _quick_config(fault_plan=plan)
    campaign = validate_campaign_key("1.0", _PGI, config)

    journal_path = tmp_path / "c.journal"
    torn_runner = ValidationRunner(_PGI, config)
    journal = JournalWriter.create(str(journal_path), campaign,
                                   faults=torn_runner.faults)
    with pytest.raises(InjectedJournalTear):
        torn_runner.run_suite(suite10, journal=journal)
    journal.close()
    assert journal.records, "the tear should land after >= 1 append"

    stream = tmp_path / "resume.ndjson"
    resumed_config = _quick_config(fault_plan=plan,
                                   live_stream=str(stream))
    resumed_runner = ValidationRunner(_PGI, resumed_config)
    journal = JournalWriter.resume(str(journal_path), campaign,
                                   faults=resumed_runner.faults)
    report = resumed_runner.run_suite(suite10, journal=journal)
    journal.close()

    baseline = ValidationRunner(_PGI, _quick_config()).run_suite(suite10)
    assert render_csv(report) == render_csv(baseline)

    parsed = read_live(str(stream))
    tally = parsed.tally()
    assert tally.replayed >= 1
    assert tally.units_done == len(report.results)
    replayed_events = [r for r in parsed.events("unit.finished")
                       if r["fields"]["replayed"]]
    assert len(replayed_events) == tally.replayed
    final = parsed.final_snapshot
    assert final["replayed"] == tally.replayed
    assert final["progress"] == 1.0


# ---------------------------------------------------------------------------
# the tolerant reader
# ---------------------------------------------------------------------------


def _write_stream(path, torn=False):
    telemetry = LiveTelemetry([NDJSONStreamSink(str(path))])
    telemetry.begin(total_units=2, command="test")
    telemetry.event("unit.finished", **_unit_event()["fields"])
    telemetry.end()
    if torn:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "event", "kind": "unit.fin')  # killed mid-write


def test_parse_live_strict_vs_tolerant(tmp_path):
    path = tmp_path / "t.ndjson"
    _write_stream(path, torn=True)
    with pytest.raises(ValueError, match="invalid JSON"):
        read_live(str(path))
    stream = read_live(str(path), strict=False)
    assert stream.malformed == 1
    assert stream.final_snapshot is not None
    assert stream.tally().units_done == 1


def test_parse_live_rejects_wrong_format_even_tolerant():
    text = json.dumps({"type": "meta", "format": "something/else"})
    with pytest.raises(ValueError, match="unsupported format"):
        parse_live(text, strict=False)


def test_render_tally_text_reconciles(tmp_path):
    path = tmp_path / "t.ndjson"
    _write_stream(path)
    stream = read_live(str(path))
    text = render_tally_text(stream.tally(), final=stream.final_snapshot)
    assert "units done         : 1/2" in text
    assert "compile cache      : 1 hits / 0 misses" in text


# ---------------------------------------------------------------------------
# status line + prometheus
# ---------------------------------------------------------------------------


def test_status_line_sink_repaints_and_finishes_clean():
    out = io.StringIO()
    sink = StatusLineSink(out)
    reporter = SnapshotReporter(clock=lambda: 0.0)
    reporter.begin()
    reporter.tally.fold({"type": "event", "kind": "campaign.start",
                         "fields": {"total_units": 2}})
    reporter.tally.fold(_unit_event())
    sink.emit({"type": "event", "kind": "noise"})  # events don't repaint
    sink.emit(reporter.snapshot())
    sink.close(reporter.snapshot(final=True))
    text = out.getvalue()
    assert text.startswith("\r")
    assert text.endswith("\n")
    assert "1/2" in text


def test_render_status_line_contents():
    line = render_status_line({
        "units_done": 3, "total_units": 10, "progress": 0.3,
        "passed": 2, "failed": 1, "units_per_sec": 1.5, "eta_s": 4.7,
        "compile_cache": {"hit_rate": 0.5},
    })
    assert "3/10" in line
    assert "pass 2" in line and "fail 1" in line
    assert "eta" in line


def test_prometheus_render_passes_own_linter():
    reporter = SnapshotReporter(clock=lambda: 0.0)
    reporter.begin()
    reporter.tally.fold({"type": "event", "kind": "campaign.start",
                         "fields": {"total_units": 2}})
    reporter.tally.fold(_unit_event(passed=False,
                                    failure_kind="wrong_value"))
    reporter.tally.fold(_unit_event(backend="closures",
                                    lower_cache_hits=1))
    text = render_prometheus(reporter.snapshot(final=True))
    assert lint_prometheus(text) == []
    assert "repro_campaign_units_done_total 2" in text
    assert 'failure_kinds{kind="wrong_value"}' not in text  # spec'd name
    assert 'repro_campaign_failures_total{kind="wrong_value"} 1' in text


def test_prometheus_linter_catches_breakage():
    assert lint_prometheus("repro_x 1\n") != []  # sample without HELP/TYPE
    dup = ("# HELP repro_x h\n# TYPE repro_x gauge\n"
           "repro_x 1\nrepro_x 2\n")
    assert any("duplicate" in p for p in lint_prometheus(dup))
    bad = "# HELP repro_y h\n# TYPE repro_y gauge\nrepro_y oops\n"
    assert any("number" in p for p in lint_prometheus(bad))


# ---------------------------------------------------------------------------
# config plumbing
# ---------------------------------------------------------------------------


def test_from_config_returns_none_without_sinks():
    assert LiveTelemetry.from_config(HarnessConfig()) is None


def test_config_rejects_empty_sink_paths():
    with pytest.raises(ValueError):
        HarnessConfig(live_stream="")
    with pytest.raises(ValueError):
        HarnessConfig(prom="   ")


def test_live_knobs_do_not_change_campaign_identity(tmp_path):
    from repro.journal import validate_campaign_key

    quiet = validate_campaign_key("1.0", _PGI, _quick_config())
    loud = validate_campaign_key("1.0", _PGI, _quick_config(
        live_stream=str(tmp_path / "s.ndjson"), status=True,
        prom=str(tmp_path / "s.prom")))
    assert quiet == loud


# ---------------------------------------------------------------------------
# lowering-cache instrumentation (satellite)
# ---------------------------------------------------------------------------


def test_lowering_cache_counters_hit_and_miss():
    from repro.compiler import Compiler
    from repro.obs import render_summary_text, summarize_trace
    from repro.obs.sink import parse_trace, trace_to_jsonl

    tracer = Tracer()
    compiled = Compiler().compile("int main() { return 0; }", "c")
    with tracer.span("suite-run"):
        first = compiled.runner(backend="closures", tracer=tracer, name="t")
        second = compiled.runner(backend="closures", tracer=tracer, name="t")
    assert first.lower_hit is False
    assert second.lower_hit is True
    snapshot = tracer.metrics.snapshot()
    assert snapshot["counters"]["lower.cache_misses"] == 1
    assert snapshot["counters"]["lower.cache_hits"] == 1
    # tree backend never lowers
    assert compiled.runner(backend="tree", tracer=tracer).lower_hit is None

    trace = parse_trace(trace_to_jsonl(tracer, meta={"command": "t"}))
    summary = summarize_trace(trace)
    assert summary.lower_hits == 1 and summary.lower_misses == 1
    assert "lowering cache     : 1 hits / 1 misses" in \
        render_summary_text(summary)


def test_journal_round_trips_lower_hit(tmp_path, suite10):
    from repro.journal import JournalWriter, read_journal, \
        validate_campaign_key
    from repro.journal.codec import decode_result

    config = _quick_config(backend="closures",
                           feature_prefixes=["parallel.if"])
    campaign = validate_campaign_key("1.0", _PGI, config)
    path = tmp_path / "j.journal"
    runner = ValidationRunner(_PGI, config)
    journal = JournalWriter.create(str(path), campaign)
    report = runner.run_suite(suite10, journal=journal)
    journal.close()

    assert len(report.results) == 1
    original = report.results[0]
    assert original.functional.lower_hit is not None

    loaded = read_journal(str(path))
    assert len(loaded.records) == 1
    (payload,) = loaded.records.values()
    decoded = decode_result(payload, original.template)
    assert decoded.functional.lower_hit == original.functional.lower_hit


# ---------------------------------------------------------------------------
# the CLI surface
# ---------------------------------------------------------------------------


def test_cli_validate_live_stream_prom_status(tmp_path, capsys):
    stream = tmp_path / "run.ndjson"
    prom = tmp_path / "run.prom"
    out = tmp_path / "report.csv"
    rc = main(["validate", "--features", "parallel.if", "--iterations", "1",
               "--no-cross", "--language", "c",
               "--live-stream", str(stream), "--prom", str(prom),
               "--status", "--format", "csv", "--output", str(out)])
    assert rc == 0
    err = capsys.readouterr().err
    assert "\r" in err and "100.0%" in err

    parsed = read_live(str(stream))
    assert parsed.meta["format"] == LIVE_FORMAT
    assert parsed.final_snapshot["final"] is True
    assert lint_prometheus(prom.read_text()) == []
    sidecar = json.loads((tmp_path / "run.ndjson.snapshot.json").read_text())
    assert sidecar == parsed.final_snapshot


def test_cli_obs_tail_and_summarize(tmp_path, capsys):
    stream = tmp_path / "run.ndjson"
    assert main(["validate", "--features", "parallel.if",
                 "--iterations", "1", "--no-cross", "--language", "c",
                 "--live-stream", str(stream), "--format", "csv",
                 "--output", str(tmp_path / "r.csv")]) == 0
    capsys.readouterr()

    assert main(["obs", "tail", str(stream)]) == 0
    out = capsys.readouterr().out
    assert "campaign.start" in out
    assert "unit.finished" in out
    assert "FINAL" in out

    assert main(["obs", "tail", str(stream), "--summarize"]) == 0
    out = capsys.readouterr().out
    assert "units done" in out
    assert "run metrics" in out


def test_cli_obs_tail_tolerates_torn_tail(tmp_path, capsys):
    stream = tmp_path / "t.ndjson"
    _write_stream(stream, torn=True)
    assert main(["obs", "tail", str(stream), "--summarize"]) == 0
    captured = capsys.readouterr()
    assert "malformed" in captured.err
    assert "units done" in captured.out


def test_cli_obs_tail_follow_reads_to_final(tmp_path, capsys):
    stream = tmp_path / "f.ndjson"
    _write_stream(stream)
    assert main(["obs", "tail", str(stream), "--follow",
                 "--poll-s", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "unit.finished" in out
    assert "FINAL" in out


def test_cli_obs_tail_missing_file(tmp_path, capsys):
    assert main(["obs", "tail", str(tmp_path / "nope.ndjson")]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_cli_obs_perf_renders_history(tmp_path, capsys):
    entry = {
        "schema": "bench-hotpath/1", "git_sha": "abc1234",
        "recorded_at": "2026-08-08T00:00:00Z",
        "python": "3.11.7", "machine": "x86_64",
        "microbench": {"tree_steps_per_sec": 900000,
                       "closures_steps_per_sec": 5000000,
                       "speedup": 5.56, "steps": 1, "reps": 3},
        "engine": {"tree": {"iterations_per_sec": 250.0},
                   "closures": {"iterations_per_sec": 240.0}},
        "generation": {"templates_per_sec": 20000.0},
        "fig8a": {"wall_s": 8.0},
    }
    second = dict(entry, git_sha="def5678",
                  microbench=dict(entry["microbench"],
                                  closures_steps_per_sec=5400000))
    history = tmp_path / "h.jsonl"
    history.write_text(json.dumps(entry) + "\n" + json.dumps(second) + "\n")
    out = tmp_path / "perf.html"
    assert main(["obs", "perf", str(history), "--output", str(out)]) == 0
    page = out.read_text()
    assert "abc1234" in page and "def5678" in page
    assert "5,400,000" in page  # hero number = latest run
    assert "<svg" in page and "<table>" in page
    # escaping: poisoned sha must not land raw in the page
    entry["git_sha"] = "<script>alert(1)</script>"
    history.write_text(json.dumps(entry) + "\n")
    capsys.readouterr()
    assert main(["obs", "perf", str(history)]) == 0
    page = capsys.readouterr().out
    assert "<script>alert(1)" not in page


def test_cli_obs_perf_empty_input(tmp_path, capsys):
    empty = tmp_path / "e.jsonl"
    empty.write_text("")
    assert main(["obs", "perf", str(empty)]) == 1
    assert "no bench history" in capsys.readouterr().err


def test_cli_titan_live_stream(tmp_path, capsys):
    stream = tmp_path / "titan.ndjson"
    rc = main(["titan", "--nodes", "4", "--sample", "2",
               "--live-stream", str(stream)])
    assert rc == 0
    capsys.readouterr()
    parsed = read_live(str(stream))
    tally = parsed.tally()
    assert tally.units_done >= 4  # sample*stacks + any triage rechecks
    assert parsed.final_snapshot is not None
    assert parsed.final_snapshot["units_done"] == tally.units_done


# ---------------------------------------------------------------------------
# bench history (satellite)
# ---------------------------------------------------------------------------


def test_record_appends_history_with_sha_and_timestamp(tmp_path):
    from benchmarks.record import append_history

    data = {"schema": "bench-hotpath/1", "recorded_at": "ambient",
            "microbench": {"closures_steps_per_sec": 1}}
    path = tmp_path / "h.jsonl"
    append_history(data, str(path), "cafe123", "2026-08-08T12:00:00Z")
    append_history(data, str(path), "beef456")
    lines = [json.loads(line) for line in
             path.read_text().splitlines()]
    assert lines[0]["git_sha"] == "cafe123"
    assert lines[0]["recorded_at"] == "2026-08-08T12:00:00Z"
    assert lines[1]["git_sha"] == "beef456"
    assert lines[1]["recorded_at"] == "ambient"  # no override: keep as-is
    # the input dict is not mutated
    assert "git_sha" not in data


def test_record_history_requires_git_sha(capsys):
    from benchmarks.record import main as record_main

    with pytest.raises(SystemExit) as exc:
        record_main(["--history", "h.jsonl"])
    assert exc.value.code == 2
    assert "--git-sha" in capsys.readouterr().err


def test_committed_history_parses_and_renders():
    from repro.obs import render_perf_html

    with open("benchmarks/BENCH_history.jsonl", encoding="utf-8") as fh:
        entries = [json.loads(line) for line in fh if line.strip()]
    assert entries, "BENCH_history.jsonl must have at least the seed entry"
    for entry in entries:
        assert entry["schema"] == "bench-hotpath/1"
        assert entry["git_sha"]
    page = render_perf_html(entries)
    assert entries[-1]["git_sha"] in page


def test_cli_obs_tail_follow_idle_timeout_exits_1(tmp_path, capsys):
    # a follower of a dead campaign must not hang forever: without new
    # data for --idle-timeout-s it gives up with exit 1
    stream = tmp_path / "dead.ndjson"
    telemetry = LiveTelemetry([NDJSONStreamSink(str(stream))])
    telemetry.begin(total_units=2, command="test")
    telemetry.event("unit.finished", **_unit_event()["fields"])
    # no .end(): the writer died — the stream has no final snapshot
    assert main(["obs", "tail", str(stream), "--follow",
                 "--poll-s", "0.01", "--idle-timeout-s", "0.1"]) == 1
    captured = capsys.readouterr()
    assert "unit.finished" in captured.out
    assert "no new stream data" in captured.err


def test_cli_obs_tail_follow_idle_timeout_covers_missing_file(
        tmp_path, capsys):
    # a path that never appears also trips the idle budget
    assert main(["obs", "tail", str(tmp_path / "never.ndjson"), "--follow",
                 "--poll-s", "0.01", "--idle-timeout-s", "0.1"]) == 1
    assert "no new stream data" in capsys.readouterr().err


def test_cli_obs_tail_follow_detects_shrinking_file(tmp_path, capsys):
    # rotation/truncation: the writer replaced the stream with a shorter
    # file; the follower must restart from offset 0 instead of silently
    # waiting at a stale offset forever
    import threading
    import time as _time

    stream = tmp_path / "rotated.ndjson"
    telemetry = LiveTelemetry([NDJSONStreamSink(str(stream))])
    telemetry.begin(total_units=100, command="test")
    for _ in range(60):  # long enough that the rewrite below shrinks it
        telemetry.event("unit.finished", **_unit_event()["fields"])
    # no final snapshot yet — the follower keeps following

    def rotate():
        _time.sleep(0.3)
        _write_stream(stream)  # a fresh, shorter stream ending in FINAL

    rotator = threading.Thread(target=rotate)
    rotator.start()
    try:
        assert main(["obs", "tail", str(stream), "--follow",
                     "--poll-s", "0.01", "--idle-timeout-s", "30"]) == 0
    finally:
        rotator.join()
    captured = capsys.readouterr()
    assert "shrank" in captured.err
    assert "FINAL" in captured.out
