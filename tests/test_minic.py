"""Tests for the mini-C frontend (lexer + parser + pragma handling)."""

import pytest

from repro.frontend.errors import LexError, ParseError
from repro.frontend.tokens import TokenKind
from repro.ir import (
    AccConstruct,
    AccLoop,
    AccStandalone,
    Assign,
    Binary,
    Block,
    Call,
    Cast,
    Conditional,
    DeclStmt,
    For,
    Ident,
    If,
    Index,
    IntLit,
    FloatLit,
    Return,
    Unary,
    While,
    walk,
)
from repro.minic import parse_expression_text, parse_program, tokenize


class TestLexer:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("int foo while bar")
        kinds = [(t.kind, t.text) for t in toks[:-1]]
        assert kinds == [
            (TokenKind.KEYWORD, "int"), (TokenKind.IDENT, "foo"),
            (TokenKind.KEYWORD, "while"), (TokenKind.IDENT, "bar"),
        ]

    def test_numbers(self):
        toks = tokenize("42 0x1F 3.5 1.E-9 2.0f 7f")
        assert toks[0].value == 42
        assert toks[1].value == 31
        assert toks[2].value == (3.5, False)
        assert toks[3].value == (1e-9, False)
        assert toks[4].value == (2.0, True)
        assert toks[5].value == (7.0, True)

    def test_operators_maximal_munch(self):
        toks = tokenize("a+++b")  # a ++ + b
        texts = [t.text for t in toks[:-1]]
        assert texts == ["a", "++", "+", "b"]

    def test_comments_skipped(self):
        toks = tokenize("a // line\n/* block\nstill */ b")
        texts = [t.text for t in toks[:-1]]
        assert texts == ["a", "b"]

    def test_pragma_token_captures_payload(self):
        toks = tokenize("#pragma acc parallel num_gangs(4)\nx;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert toks[0].text == "parallel num_gangs(4)"

    def test_pragma_backslash_continuation(self):
        src = "#pragma acc parallel copy(a) \\\n    num_gangs(2)\n"
        toks = tokenize(src)
        assert toks[0].kind is TokenKind.PRAGMA
        assert "num_gangs(2)" in toks[0].text

    def test_include_lines_ignored(self):
        toks = tokenize("#include <stdio.h>\nint x;")
        assert toks[0].text == "int"

    def test_string_and_char_literals(self):
        toks = tokenize(r'"a\nb" ' + r"'x'")
        assert toks[0].value == "a\nb"
        assert toks[1].value == ord("x")

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unexpected_char_raises(self):
        with pytest.raises(LexError):
            tokenize("int a @ b;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression_text("1 + 2 * 3")
        assert isinstance(e, Binary) and e.op == "+"
        assert isinstance(e.right, Binary) and e.right.op == "*"

    def test_precedence_logical(self):
        e = parse_expression_text("a < b && c || d")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_conditional(self):
        e = parse_expression_text("a ? b : c")
        assert isinstance(e, Conditional)

    def test_unary_and_parens(self):
        e = parse_expression_text("-(a + b)")
        assert isinstance(e, Unary) and e.op == "-"
        assert isinstance(e.operand, Binary)

    def test_call_with_args(self):
        e = parse_expression_text("powf(x, 2)")
        assert isinstance(e, Call) and e.name == "powf" and len(e.args) == 2

    def test_multidim_index(self):
        e = parse_expression_text("m[i][j]")
        assert isinstance(e, Index) and len(e.indices) == 2

    def test_sizeof_is_constant(self):
        assert parse_expression_text("sizeof(int)").value == 4
        assert parse_expression_text("sizeof(double)").value == 8

    def test_cast(self):
        e = parse_expression_text("(int*)malloc(8)")
        assert isinstance(e, Cast) and e.type.pointer == 1

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression_text("a + b c")


def _main_of(src: str):
    return parse_program(src).main


class TestStatements:
    def test_declarations_multi(self):
        main = _main_of("int main(){ int a, b = 2, c[10]; return 0; }")
        decl = main.body.stmts[0]
        assert isinstance(decl, DeclStmt)
        names = [d.name for d in decl.decls]
        assert names == ["a", "b", "c"]
        assert decl.decls[2].dims

    def test_canonical_for_normalised(self):
        main = _main_of("int main(){ int i; for(i=0;i<10;i++) i = i; return 0; }")
        loop = main.body.stmts[1]
        assert isinstance(loop, For)
        assert loop.var == "i" and not loop.inclusive

    def test_for_le_inclusive(self):
        main = _main_of("int main(){ int i; for(i=1;i<=5;i+=2) i=i; return 0; }")
        loop = main.body.stmts[1]
        assert loop.inclusive
        assert loop.step.value == 2

    def test_decl_init_for_wrapped(self):
        main = _main_of("int main(){ for(int m=0;m<3;m++) m=m; return 0; }")
        wrapper = main.body.stmts[0]
        assert isinstance(wrapper, Block)
        assert isinstance(wrapper.stmts[-1], For)

    def test_descending_for(self):
        main = _main_of("int main(){ int i; for(i=9;i>=0;i--) i=i; return 0; }")
        loop = main.body.stmts[1]
        assert isinstance(loop, For) and loop.inclusive

    def test_noncanonical_for_desugars_to_while(self):
        src = "int main(){ int i=0, s=1; for(; s<100; ) s = s*2; return s; }"
        main = _main_of(src)
        assert any(isinstance(s, While) for s in walk(main))

    def test_compound_assignment(self):
        main = _main_of("int main(){ int x = 1; x += 2; x++; return x; }")
        ops = [s.op for s in main.body.stmts if isinstance(s, Assign)]
        assert ops == ["+", "+"]

    def test_if_else(self):
        main = _main_of("int main(){ int a=1; if (a) a=2; else a=3; return a; }")
        stmt = main.body.stmts[1]
        assert isinstance(stmt, If) and stmt.other is not None

    def test_globals_and_functions(self):
        prog = parse_program("int g[4];\nint helper(int x){ return x; }\nint main(){ return helper(1); }")
        assert [g.name for g in prog.globals] == ["g"]
        assert [f.name for f in prog.functions] == ["helper", "main"]

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_program("int main(){ int a = 1 return a; }")


class TestPragmas:
    def test_region_construct(self):
        main = _main_of(
            "int main(){ int a=0;\n#pragma acc parallel copy(a)\n{ a = 1; }\nreturn a; }"
        )
        constructs = [s for s in walk(main) if isinstance(s, AccConstruct)]
        assert len(constructs) == 1
        assert constructs[0].directive.kind == "parallel"
        assert constructs[0].directive.clause("copy") is not None

    def test_loop_directive_binds_to_for(self):
        main = _main_of(
            "int main(){ int i,a[5];\n#pragma acc parallel\n{\n#pragma acc loop\nfor(i=0;i<5;i++) a[i]=i;\n}\nreturn 0; }"
        )
        loops = [s for s in walk(main) if isinstance(s, AccLoop)]
        assert len(loops) == 1 and loops[0].loop.var == "i"

    def test_loop_directive_requires_for(self):
        with pytest.raises(ParseError):
            parse_program("int main(){\n#pragma acc loop\nint x;\nreturn 0; }")

    def test_loop_directive_keeps_decl_init(self):
        main = _main_of(
            "int main(){ int a[5];\n#pragma acc parallel loop copy(a[0:5])\nfor(int i=0;i<5;i++) a[i]=i;\nreturn 0; }"
        )
        # the induction declaration must be preserved around the AccLoop
        found = [s for s in walk(main) if isinstance(s, AccLoop)]
        assert len(found) == 1

    def test_standalone_update_wait(self):
        main = _main_of(
            "int main(){ int a[5];\n#pragma acc update host(a[0:5])\n#pragma acc wait(2)\nreturn 0; }"
        )
        standalones = [s for s in walk(main) if isinstance(s, AccStandalone)]
        kinds = [s.directive.kind for s in standalones]
        assert kinds == ["update", "wait"]

    def test_declare_attaches_to_function(self):
        prog = parse_program(
            "int main(){ int a[4];\n#pragma acc declare create(a[0:4])\nreturn 0; }"
        )
        assert len(prog.main.declares) == 1
        assert prog.main.declares[0].kind == "declare"

    def test_file_scope_declare_attaches_to_next_function(self):
        prog = parse_program(
            "int g[4];\n#pragma acc declare create(g[0:4])\nint main(){ return 0; }"
        )
        assert len(prog.main.declares) == 1

    def test_data_sections_parse(self):
        main = _main_of(
            "int main(){ int a[10];\n#pragma acc data copy(a[2:6])\n{ }\nreturn 0; }"
        )
        construct = next(s for s in walk(main) if isinstance(s, AccConstruct))
        ref = construct.directive.clause("copy").refs[0]
        assert ref.sections[0].start.value == 2
        assert ref.sections[0].length.value == 6

    def test_reduction_clause(self):
        main = _main_of(
            "int main(){ int s=0,i;\n#pragma acc parallel loop reduction(+:s)\nfor(i=0;i<4;i++) s+=i;\nreturn s; }"
        )
        loop = next(s for s in walk(main) if isinstance(s, AccLoop))
        clause = loop.directive.clause("reduction")
        assert clause.op == "+" and clause.var_names == ["s"]

    def test_pcopy_alias_normalised(self):
        main = _main_of(
            "int main(){ int a[4];\n#pragma acc data pcopy(a[0:4])\n{ }\nreturn 0; }"
        )
        construct = next(s for s in walk(main) if isinstance(s, AccConstruct))
        assert construct.directive.clause("present_or_copy") is not None

    def test_unknown_clause_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int main(){\n#pragma acc parallel zorp(1)\n{ }\nreturn 0; }")

    def test_unknown_directive_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int main(){\n#pragma acc teleport\n{ }\nreturn 0; }")
