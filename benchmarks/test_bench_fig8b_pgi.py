"""Figure 8(b): PGI pass rates per version, C and Fortran.

Shape assertions encode the paper's findings: support begins at 12.6 and
improves through 12.10 ("version 12.8 onwards shows better quality"); "the
pass rate in 13.2 is not as good as 12.10 because 13.x releases were
reorganized to support multiple targets"; "some improvement from version
13.4 onwards"; the residual failures are dominated by the async family.
"""

import pytest

from benchmarks.conftest import bar, print_series
from repro.analysis import vendor_pass_rates


def test_bench_fig8b_pgi(benchmark, suite10, sweep_config):
    def sweep():
        return vendor_pass_rates("pgi", suite10, sweep_config)

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for lang in ("c", "fortran"):
        for point in rates[lang]:
            rows.append(
                f"PGI {point.version:6s} {lang:8s} "
                f"{point.pass_rate:6.1f}%  {bar(point.pass_rate)}"
            )
    print_series("Fig. 8(b) — PGI pass rates (C & Fortran test suites)", rows)

    c = {p.version: p.pass_rate for p in rates["c"]}
    f = {p.version: p.pass_rate for p in rates["fortran"]}

    # improvement 12.6 -> 12.10
    assert c["12.10"] > c["12.6"]
    # the 13.2 multi-target reorganisation dip
    assert c["13.2"] < c["12.10"]
    # recovery from 13.4 onwards
    assert c["13.4"] > c["13.2"]
    assert c["13.8"] >= c["13.4"]
    # Fortran consistently below C (Table I: 13-14 F bugs vs 5-8 C bugs)
    for version in c:
        assert f[version] <= c[version]
    # async-family failures persist to the last version (Section V-B)
    last = rates["c"][-1]
    failing = set(last.report.failed_features("c"))
    assert {"parallel.async", "kernels.async"} <= failing
