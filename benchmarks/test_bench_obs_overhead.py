"""Observability-overhead benchmark: traced vs untraced suite runs.

The tracing subsystem (repro.obs) is on the hot path of every phase —
``_run_phase`` opens three spans per phase and the spans double as the
runner's timers.  Two guarantees are measured here:

* the *disabled* path (the default ``NULL_TRACER``) stays the baseline —
  ``test_bench_parallel_engine`` keeps asserting the untraced speedups, and
  this bench pins the untraced run as the denominator;
* a fully *enabled* tracer with profiling collects thousands of spans,
  events and histogram samples for bounded cost (asserted ≤ 1.6× the
  untraced run — generous; typical overhead is a few percent).
"""

import time

from benchmarks.conftest import print_series
from repro.compiler.vendors import vendor_version
from repro.harness import HarnessConfig, ValidationRunner, render_csv
from repro.obs import Tracer


def _run(suite, tracer=None):
    behavior = vendor_version("pgi", "13.2").behavior("c")
    config = HarnessConfig(iterations=3, languages=("c",))
    runner = ValidationRunner(behavior, config, tracer=tracer)
    start = time.perf_counter()
    report = runner.run_suite(suite)
    return report, time.perf_counter() - start


def test_bench_tracing_overhead(benchmark, suite10):
    untraced_report, untraced_s = _run(suite10)

    tracer = Tracer(profile=True)

    def traced_run():
        return _run(suite10, tracer=tracer)

    traced_report, traced_s = benchmark.pedantic(
        traced_run, rounds=1, iterations=1
    )
    overhead = traced_s / untraced_s

    snapshot = tracer.metrics.snapshot()
    print_series("Observability — traced vs untraced, full C suite", [
        f"untraced {untraced_s:7.2f} s",
        f"traced   {traced_s:7.2f} s   overhead {overhead:5.2f}x   "
        f"{len(tracer.spans)} spans, {len(tracer.events)} events, "
        f"{len(snapshot['histograms'])} histograms",
    ])

    # tracing observes the run, it must never change it
    assert render_csv(traced_report) == render_csv(untraced_report)

    # the trace actually captured the run (3+ spans per template phase)
    assert len(tracer.spans) > 3 * len(traced_report.results)
    assert snapshot["counters"]["templates.run"] == len(traced_report.results)
    assert snapshot["histograms"]["profile.bytes_to_device"][0] > 0

    # bounded cost: well under 1.6x even on noisy CI hosts
    assert overhead <= 1.6, (
        f"tracing overhead {overhead:.2f}x exceeds the 1.6x budget "
        f"({untraced_s:.2f}s -> {traced_s:.2f}s)"
    )
