"""Observability-overhead benchmark: traced vs untraced suite runs.

The tracing subsystem (repro.obs) is on the hot path of every phase —
``_run_phase`` opens three spans per phase and the spans double as the
runner's timers.  Two guarantees are measured here:

* the *disabled* path (the default ``NULL_TRACER``) stays the baseline —
  ``test_bench_parallel_engine`` keeps asserting the untraced speedups, and
  this bench pins the untraced run as the denominator;
* a fully *enabled* tracer with profiling collects thousands of spans,
  events and histogram samples for bounded cost (asserted ≤ 1.6× the
  untraced run — generous; typical overhead is a few percent).
"""

import time

from benchmarks.conftest import print_series
from repro.compiler.vendors import vendor_version
from repro.harness import HarnessConfig, ValidationRunner, render_csv
from repro.obs import Tracer


def _run(suite, tracer=None, **config_kw):
    behavior = vendor_version("pgi", "13.2").behavior("c")
    config = HarnessConfig(iterations=3, languages=("c",), **config_kw)
    runner = ValidationRunner(behavior, config, tracer=tracer)
    start = time.perf_counter()
    report = runner.run_suite(suite)
    return report, time.perf_counter() - start


def test_bench_tracing_overhead(benchmark, suite10):
    untraced_report, untraced_s = _run(suite10)

    tracer = Tracer(profile=True)

    def traced_run():
        return _run(suite10, tracer=tracer)

    traced_report, traced_s = benchmark.pedantic(
        traced_run, rounds=1, iterations=1
    )
    overhead = traced_s / untraced_s

    snapshot = tracer.metrics.snapshot()
    print_series("Observability — traced vs untraced, full C suite", [
        f"untraced {untraced_s:7.2f} s",
        f"traced   {traced_s:7.2f} s   overhead {overhead:5.2f}x   "
        f"{len(tracer.spans)} spans, {len(tracer.events)} events, "
        f"{len(snapshot['histograms'])} histograms",
    ])

    # tracing observes the run, it must never change it
    assert render_csv(traced_report) == render_csv(untraced_report)

    # the trace actually captured the run (3+ spans per template phase)
    assert len(tracer.spans) > 3 * len(traced_report.results)
    assert snapshot["counters"]["templates.run"] == len(traced_report.results)
    assert snapshot["histograms"]["profile.bytes_to_device"][0] > 0

    # bounded cost: well under 1.6x even on noisy CI hosts
    assert overhead <= 1.6, (
        f"tracing overhead {overhead:.2f}x exceeds the 1.6x budget "
        f"({untraced_s:.2f}s -> {traced_s:.2f}s)"
    )


def test_bench_live_telemetry_overhead(benchmark, suite10, tmp_path):
    """Live telemetry (NDJSON stream + prom textfile) must stay cheap.

    Every unit completion writes and flushes one stream line; snapshots
    (and the fsync'd atomic prom rewrite they trigger) are throttled to
    one per 0.2s.  The gate: a fully telemetered run costs at most 1.15x
    an untelemetered one.
    """
    from repro.obs.live import lint_prometheus, read_live

    plain_report, plain_s = _run(suite10)

    stream = tmp_path / "bench.ndjson"
    prom = tmp_path / "bench.prom"

    def live_run():
        return _run(suite10, live_stream=str(stream), prom=str(prom))

    live_report, live_s = benchmark.pedantic(live_run, rounds=1, iterations=1)
    overhead = live_s / plain_s

    parsed = read_live(str(stream))
    print_series("Live telemetry — streamed vs untelemetered, full C suite", [
        f"plain    {plain_s:7.2f} s",
        f"live     {live_s:7.2f} s   overhead {overhead:5.2f}x   "
        f"{len(parsed.records)} stream records, "
        f"{len(parsed.snapshots())} snapshots",
    ])

    # telemetry observes the run, it must never change it
    assert render_csv(live_report) == render_csv(plain_report)

    # the stream captured every unit and a lint-clean prom export
    assert len(parsed.events("unit.finished")) == len(live_report.results)
    assert parsed.final_snapshot is not None
    assert lint_prometheus(prom.read_text()) == []

    # bounded cost: the PR's acceptance gate
    assert overhead <= 1.15, (
        f"live-telemetry overhead {overhead:.2f}x exceeds the 1.15x budget "
        f"({plain_s:.2f}s -> {live_s:.2f}s)"
    )
