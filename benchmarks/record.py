"""Record the hot-path performance baseline (``BENCH_hotpath.json``).

Measures the four numbers that matter for campaign wall-clock and writes
them as a JSON artifact:

* interpreter steps/sec for both backends on a host-compute-heavy
  microprogram (and the closures-over-tree speedup);
* engine iterations/sec — full validation pipeline over a feature subset,
  M iterations per template;
* template generation throughput over the whole shipped corpus;
* corpus lint throughput, cold (full static analysis) vs warm (incremental
  cache hits) — the warm/cold speedup gates the lint cache;
* a Fig. 8(a)-style vendor sweep wall-clock point (the end-to-end number a
  researcher actually waits on).

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.record --output benchmarks/BENCH_hotpath.json

CI regression gate (compares against the committed baseline)::

    PYTHONPATH=src python -m benchmarks.record --compare benchmarks/BENCH_hotpath.json

The gate fails (exit 1) if closures interpreter steps/sec regresses by more
than ``--fail-threshold`` (default 20%) against the baseline, or if the
closures-over-tree speedup drops below ``--min-speedup`` (default 3.0).
The speedup floor is machine-independent — both backends run on the same
box — so it is the primary signal; the absolute steps/sec comparison
catches environment-level regressions on stable runners.

Perf trajectory (``BENCH_history.jsonl``): pass ``--history`` to append the
run as one JSON line annotated with ``--git-sha`` (required with
``--history``) and, optionally, an explicit ``--timestamp`` so committed
history entries carry the commit's time rather than the recording
machine's clock.  ``repro obs perf benchmarks/BENCH_history.jsonl`` renders
the trajectory as an HTML page::

    PYTHONPATH=src python -m benchmarks.record \\
        --output benchmarks/BENCH_hotpath.json \\
        --history benchmarks/BENCH_history.jsonl \\
        --git-sha "$(git rev-parse --short HEAD)"
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.analysis import vendor_pass_rates
from repro.compiler import Compiler, ExecutionLimits
from repro.harness import HarnessConfig, ValidationRunner
from repro.suite import openacc10_suite
from repro.suite.registry import _collect_10
from repro.templates import generate_pair, parse_template

SCHEMA = "bench-hotpath/1"

#: host-compute-heavy microprogram: tight loops, branches, calls, a while
#: spine — the statement mix that dominates interpreter step counts
MICRO_SOURCE = """
int work(int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int t = i * 3 + 1;
    if (t % 2 == 0) { acc = acc + t; } else { acc = acc - i; }
    while (t > 50) { t = t - 17; }
    acc = acc + t;
  }
  return acc;
}
int main() {
  int total = 0;
  for (int r = 0; r < 40; r = r + 1) {
    total = total + work(400);
  }
  return total % 97;
}
"""


def bench_interpreter(reps: int) -> dict:
    """Steps/sec for both backends; asserts identical results."""
    compiled = Compiler().compile(MICRO_SOURCE, "c", "hotpath_micro.c")
    limits = ExecutionLimits(max_steps=50_000_000)
    compiled.lowered()  # lowering cost stays out of the steady-state number

    results = {}
    timings = {}
    for backend in ("tree", "closures"):
        best = None
        for _ in range(reps):
            t0 = time.perf_counter()
            result = compiled.run(limits=limits, backend=backend)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        results[backend] = result
        timings[backend] = best
    if results["tree"] != results["closures"]:
        raise SystemExit("FATAL: backends diverged on the microbenchmark")
    steps = results["tree"].steps
    tree_sps = steps / timings["tree"]
    closures_sps = steps / timings["closures"]
    return {
        "steps": steps,
        "reps": reps,
        "tree_steps_per_sec": round(tree_sps),
        "closures_steps_per_sec": round(closures_sps),
        "speedup": round(closures_sps / tree_sps, 2),
    }


def bench_engine(iterations: int) -> dict:
    """Full-pipeline iterations/sec over a feature subset, per backend."""
    suite = openacc10_suite()
    out = {}
    for backend in ("tree", "closures"):
        config = HarnessConfig(
            iterations=iterations,
            feature_prefixes=["parallel", "loop", "data"],
            backend=backend,
        )
        runner = ValidationRunner(config=config)
        t0 = time.perf_counter()
        report = runner.run_suite(suite)
        wall = time.perf_counter() - t0
        total_iters = sum(
            len(phase.iterations)
            for result in report.results
            for phase in ([result.functional] +
                          ([result.cross] if result.cross else []))
        )
        out[backend] = {
            "iterations": total_iters,
            "wall_s": round(wall, 3),
            "iterations_per_sec": round(total_iters / wall, 1),
        }
    out["speedup"] = round(
        out["closures"]["iterations_per_sec"] /
        out["tree"]["iterations_per_sec"], 2,
    )
    return out


def bench_generation() -> dict:
    """Template parse + generate throughput over the whole corpus."""
    texts = _collect_10()
    t0 = time.perf_counter()
    for text in texts:
        template = parse_template(text)
        generate_pair(template)
    wall = time.perf_counter() - t0
    return {
        "templates": len(texts),
        "wall_s": round(wall, 3),
        "templates_per_sec": round(len(texts) / wall, 1),
    }


def bench_lint() -> dict:
    """Corpus lint throughput, cold (full analysis) vs warm (cache hits)."""
    import tempfile
    from pathlib import Path

    from repro.staticcheck import LintCache, lint_suite

    suite = openacc10_suite()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "lint_cache.json"
        cold_cache = LintCache(path)
        t0 = time.perf_counter()
        report = lint_suite(suite, cache=cold_cache)
        cold_s = time.perf_counter() - t0
        cold_cache.save()

        t0 = time.perf_counter()
        lint_suite(suite, cache=LintCache(path))
        warm_s = time.perf_counter() - t0
    return {
        "templates": report.checked,
        "cold_wall_s": round(cold_s, 3),
        "warm_wall_s": round(warm_s, 4),
        "cold_templates_per_sec": round(report.checked / cold_s, 1),
        "warm_templates_per_sec": round(report.checked / warm_s, 1),
        "warm_speedup": round(cold_s / warm_s, 1),
    }


def bench_fig8a() -> dict:
    """Wall-clock of a Fig. 8(a) CAPS sweep — the end-to-end user wait."""
    suite = openacc10_suite()
    config = HarnessConfig(iterations=1, run_cross=False, backend="closures")
    t0 = time.perf_counter()
    vendor_pass_rates("caps", suite, config)
    wall = time.perf_counter() - t0
    return {"backend": "closures", "wall_s": round(wall, 2)}


def record(args) -> dict:
    data = {
        "schema": SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "microbench": bench_interpreter(args.reps),
        "engine": bench_engine(args.iterations),
        "generation": bench_generation(),
        "lint": bench_lint(),
        "fig8a": bench_fig8a(),
    }
    return data


def append_history(data: dict, path: str, git_sha: str,
                   timestamp: str = None) -> dict:
    """Append one annotated history entry to ``path`` (JSONL).

    The entry is the full baseline record plus ``git_sha``; an explicit
    ``timestamp`` overrides ``recorded_at`` so committed entries carry
    commit time, not the recording machine's ambient clock.
    """
    entry = dict(data)
    entry["git_sha"] = git_sha
    if timestamp:
        entry["recorded_at"] = timestamp
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def check(data: dict, args) -> int:
    """Apply the gates; returns a process exit code."""
    failures = []
    speedup = data["microbench"]["speedup"]
    if speedup < args.min_speedup:
        failures.append(
            f"closures speedup {speedup:.2f}x is below the "
            f"{args.min_speedup:.1f}x floor"
        )
    lint_speedup = data["lint"]["warm_speedup"]
    if lint_speedup < args.min_lint_speedup:
        failures.append(
            f"warm lint cache speedup {lint_speedup:.1f}x is below the "
            f"{args.min_lint_speedup:.1f}x floor"
        )
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        if baseline.get("schema") != SCHEMA:
            failures.append(
                f"baseline {args.compare} has schema "
                f"{baseline.get('schema')!r}, expected {SCHEMA!r}"
            )
        else:
            base_sps = baseline["microbench"]["closures_steps_per_sec"]
            now_sps = data["microbench"]["closures_steps_per_sec"]
            floor = base_sps * (1.0 - args.fail_threshold)
            if now_sps < floor:
                failures.append(
                    f"closures interpreter regressed: {now_sps:,} steps/s "
                    f"vs baseline {base_sps:,} "
                    f"(>{args.fail_threshold:.0%} regression)"
                )
            # baselines recorded before the lint benchmark lack the key
            base_lint = baseline.get("lint")
            if base_lint:
                base_tps = base_lint["cold_templates_per_sec"]
                now_tps = data["lint"]["cold_templates_per_sec"]
                if now_tps < base_tps * (1.0 - args.fail_threshold):
                    failures.append(
                        f"cold lint throughput regressed: {now_tps:,.1f} "
                        f"templates/s vs baseline {base_tps:,.1f} "
                        f"(>{args.fail_threshold:.0%} regression)"
                    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.record", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--output", default=None,
                        help="write the recorded baseline JSON here")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="gate against a previously recorded baseline")
    parser.add_argument("--fail-threshold", type=float, default=0.20,
                        help="max tolerated steps/sec regression vs the "
                             "baseline (default 0.20 = 20%%)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required closures-over-tree speedup floor")
    parser.add_argument("--min-lint-speedup", type=float, default=10.0,
                        help="required warm-over-cold lint cache speedup "
                             "floor")
    parser.add_argument("--reps", type=int, default=3,
                        help="microbenchmark repetitions (best-of)")
    parser.add_argument("--iterations", type=int, default=2,
                        help="engine benchmark iterations per template (M)")
    parser.add_argument("--history", default=None, metavar="JSONL",
                        help="append this run to a perf-trajectory history "
                             "file (one JSON line per run)")
    parser.add_argument("--git-sha", default=None,
                        help="git SHA to annotate the history entry with "
                             "(required with --history)")
    parser.add_argument("--timestamp", default=None,
                        help="explicit recorded_at for the history entry "
                             "(defaults to the recording time)")
    args = parser.parse_args(argv)
    if args.history and not args.git_sha:
        parser.error("--history requires --git-sha")

    data = record(args)

    micro = data["microbench"]
    engine = data["engine"]
    print(f"interpreter  tree    : {micro['tree_steps_per_sec']:>12,} steps/s")
    print(f"interpreter  closures: {micro['closures_steps_per_sec']:>12,} steps/s"
          f"  ({micro['speedup']:.2f}x)")
    print(f"engine       tree    : {engine['tree']['iterations_per_sec']:>12,.1f} iter/s")
    print(f"engine       closures: {engine['closures']['iterations_per_sec']:>12,.1f} iter/s"
          f"  ({engine['speedup']:.2f}x)")
    print(f"generation           : {data['generation']['templates_per_sec']:>12,.1f} templates/s")
    lint = data["lint"]
    print(f"lint         cold    : {lint['cold_templates_per_sec']:>12,.1f} templates/s")
    print(f"lint         warm    : {lint['warm_templates_per_sec']:>12,.1f} templates/s"
          f"  ({lint['warm_speedup']:.1f}x)")
    print(f"fig8a sweep          : {data['fig8a']['wall_s']:>12,.2f} s wall")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.history:
        append_history(data, args.history, args.git_sha, args.timestamp)
        print(f"appended to {args.history}")

    return check(data, args)


if __name__ == "__main__":
    raise SystemExit(main())
