"""Coverage-widening bench: the feature-combination suite (Section IX).

"The coverage of tests can be widened by testing several combinations of
the features."  Measures the combination suite against the reference (all
pass) and against representative buggy behaviours, reporting how many
*feature pairs* each run exercises — the coverage the base one-feature
corpus cannot provide.
"""

import pytest

from benchmarks.conftest import print_series
from repro.compiler import CompilerBehavior
from repro.harness import HarnessConfig, ValidationRunner
from repro.suite import combination_suite


def test_bench_combination_coverage(benchmark):
    suite = combination_suite()

    def run():
        config = HarnessConfig(iterations=1)
        report = ValidationRunner(config=config).run_suite(suite)
        pairs = set()
        for template in suite:
            for dep in template.dependences:
                pairs.add(tuple(sorted((template.feature, dep))))
        return report, pairs

    report, pairs = benchmark.pedantic(run, rounds=1, iterations=1)

    print_series(
        "Feature-combination suite (Section IX future work)",
        [
            f"templates            : {len(suite)}",
            f"feature pairs covered: {len(pairs)}",
            f"reference pass rate  : {report.pass_rate():.1f}%",
        ],
    )
    assert report.pass_rate() == 100.0
    assert len(pairs) >= 25


def test_bench_combination_interaction_bugs(benchmark):
    """Interaction bugs caught per injected behaviour class."""
    suite = combination_suite()
    behaviors = {
        "async wedge": CompilerBehavior(
            async_wedged_by_compute_data_clauses=True),
        "update ignored": CompilerBehavior(ignore_update=True),
        "broken + reduction": CompilerBehavior(
            broken_reductions=frozenset({"+"})),
        "copyin as create": CompilerBehavior(copyin_as_create=True),
    }

    def run():
        out = {}
        for label, behavior in behaviors.items():
            config = HarnessConfig(iterations=1, run_cross=False)
            report = ValidationRunner(behavior, config).run_suite(suite)
            out[label] = sorted(set(report.failed_features()))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        f"{label:20s} -> {len(features)} combination failures: "
        f"{', '.join(features[:4])}{'...' if len(features) > 4 else ''}"
        for label, features in results.items()
    ]
    print_series("Interaction-bug detection by the combination suite", rows)

    for label, features in results.items():
        assert features, f"{label}: no combination test caught the bug"
