"""Execution-engine benchmark: parallel speedup and compile-cache wins.

The paper's harness "compiles, runs, checks, repeats statistically" over
160+ templates per compiler — embarrassingly parallel work.  This bench
measures the two perf levers the engine adds on a full-suite run (both
languages, the Fig. 8 sweep workload):

* ``process`` policy with 4 workers vs ``serial`` — asserted ≥ 2× on hosts
  with ≥ 4 usable cores (the speedup is physically impossible on fewer, so
  the assertion scales down honestly with the core count);
* a warm compile cache vs a cold one on repeated runs of the same
  configuration — the Fig. 8 version-sweep/benchmark-round shape.

Determinism is asserted unconditionally: the parallel report must render
byte-identically to the serial one.
"""

import os
import time

import pytest

from benchmarks.conftest import print_series
from repro.compiler.vendors import vendor_version
from repro.harness import HarnessConfig, ValidationRunner, render_csv
from repro.templates import generate_cross, generate_functional


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover (non-Linux)
        return os.cpu_count() or 1


def _suite_run(suite, policy: str, workers: int):
    behavior = vendor_version("pgi", "13.2").behavior("c")
    config = HarnessConfig(iterations=3, languages=("c",),
                           policy=policy, workers=workers)
    runner = ValidationRunner(behavior, config)
    start = time.perf_counter()
    report = runner.run_suite(suite)
    return report, time.perf_counter() - start


def test_bench_parallel_engine_speedup(benchmark, suite10):
    serial_report, serial_s = _suite_run(suite10, "serial", 1)

    def parallel_run():
        return _suite_run(suite10, "process", 4)

    parallel_report, parallel_s = benchmark.pedantic(
        parallel_run, rounds=1, iterations=1
    )
    speedup = serial_s / parallel_s
    m = parallel_report.metrics

    print_series("Engine — serial vs process(workers=4), full C suite", [
        f"serial   {serial_s:7.2f} s",
        f"process  {parallel_s:7.2f} s   speedup {speedup:4.2f}x   "
        f"utilization {m.worker_utilization:5.1%} over "
        f"{len(m.worker_busy_s)} worker(s)",
    ])

    # determinism: byte-identical reports regardless of policy
    assert render_csv(parallel_report) == render_csv(serial_report)
    assert parallel_report.pass_rate() == serial_report.pass_rate()
    assert parallel_report.by_failure_kind() == serial_report.by_failure_kind()

    cores = _usable_cores()
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x with 4 process workers on {cores} cores, "
            f"got {speedup:.2f}x"
        )
    elif cores >= 2:
        assert speedup >= 1.2, (
            f"expected >= 1.2x with process workers on {cores} cores, "
            f"got {speedup:.2f}x"
        )
    else:
        pytest.xfail("single-core host: parallel speedup is not measurable")


def test_bench_compile_cache_warm_rerun(benchmark, suite10):
    """Second run of the same config through one runner: compiles all hit."""
    behavior = vendor_version("caps", "3.2.3").behavior("c")
    config = HarnessConfig(iterations=1, languages=("c",), run_cross=False)
    runner = ValidationRunner(behavior, config)

    cold_start = time.perf_counter()
    cold = runner.run_suite(suite10)
    cold_s = time.perf_counter() - cold_start

    def warm_run():
        return runner.run_suite(suite10)

    warm_start = time.perf_counter()
    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_s = time.perf_counter() - warm_start

    print_series("Engine — compile cache, repeated full-suite run", [
        f"cold {cold_s:6.2f} s   hit rate {cold.metrics.cache_hit_rate:6.1%}",
        f"warm {warm_s:6.2f} s   hit rate {warm.metrics.cache_hit_rate:6.1%}"
        f"   ({cold_s / warm_s:4.2f}x)",
    ])

    assert cold.metrics.cache_hits == 0
    assert warm.metrics.cache_hit_rate == 1.0
    # identical verdicts either way
    assert render_csv(warm) == render_csv(cold)
    # the warm run skips every parse+validate; demand a real saving
    assert warm_s < cold_s
    assert warm.metrics.compile_s < cold.metrics.compile_s


def test_bench_cache_key_isolation(suite10):
    """Sanity: two behaviours sharing a cache never cross-contaminate."""
    from repro.compiler import CompileCache, Compiler

    cache = CompileCache()
    template = suite10.get("declare", "c") or next(iter(suite10))
    generated = generate_functional(template)
    ok = cache.get_or_compile(
        Compiler(), generated.source, template.language, template.name
    )
    rejecting = Compiler(
        vendor_version("caps", "3.1.0").behavior("c")
    )
    second = cache.get_or_compile(
        rejecting, generated.source, template.language, template.name
    )
    assert ok.error is None
    assert not second.hit  # different behaviour -> different key
