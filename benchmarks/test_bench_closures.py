"""Hot-path benchmarks: the closure-compilation backend vs the tree walker.

The recorded baseline lives in ``benchmarks/BENCH_hotpath.json`` (written
by ``python -m benchmarks.record``); CI re-records on every PR and gates on
regression.  The in-test floor here is deliberately conservative (2x, vs
the 3x the recorded baseline must show) so a loaded CI box never flakes
this suite — the real bar is enforced by ``benchmarks.record --compare``
and by the committed-baseline assertions below.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import print_series
from benchmarks.record import MICRO_SOURCE, SCHEMA
from repro.compiler import Compiler, ExecutionLimits

_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_hotpath.json")


@pytest.fixture(scope="module")
def micro():
    compiled = Compiler().compile(MICRO_SOURCE, "c", "hotpath_micro.c")
    compiled.lowered()
    return compiled


_LIMITS = ExecutionLimits(max_steps=50_000_000)


def test_bench_interpreter_tree(benchmark, micro):
    result = benchmark.pedantic(
        lambda: micro.run(limits=_LIMITS, backend="tree"),
        rounds=2, iterations=1,
    )
    assert result.steps > 1_000_000


def test_bench_interpreter_closures(benchmark, micro):
    result = benchmark.pedantic(
        lambda: micro.run(limits=_LIMITS, backend="closures"),
        rounds=2, iterations=1,
    )
    assert result.steps > 1_000_000


def test_closures_speedup_floor(micro):
    """Closures must beat the tree walker by >=2x on the same box, with an
    identical ExecutionResult (the equivalence half of the contract)."""
    def best_of(backend, reps=3):
        best, result = None, None
        for _ in range(reps):
            t0 = time.perf_counter()
            result = micro.run(limits=_LIMITS, backend=backend)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best, result

    tree_s, tree_result = best_of("tree")
    closures_s, closures_result = best_of("closures")
    assert closures_result == tree_result
    speedup = tree_s / closures_s
    print_series("Interpreter hot path", [
        f"tree     {tree_result.steps / tree_s:>12,.0f} steps/s",
        f"closures {closures_result.steps / closures_s:>12,.0f} steps/s",
        f"speedup  {speedup:>12.2f}x",
    ])
    assert speedup >= 2.0, (
        f"closures backend only {speedup:.2f}x over the tree walker"
    )


class TestRecordedBaseline:
    """The committed baseline is itself part of the acceptance surface."""

    @pytest.fixture(scope="class")
    def baseline(self):
        with open(_BASELINE_PATH, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def test_schema_and_fields(self, baseline):
        assert baseline["schema"] == SCHEMA
        micro = baseline["microbench"]
        assert micro["tree_steps_per_sec"] > 0
        assert micro["closures_steps_per_sec"] > 0
        for backend in ("tree", "closures"):
            assert baseline["engine"][backend]["iterations_per_sec"] > 0
        assert baseline["generation"]["templates_per_sec"] > 0
        assert baseline["fig8a"]["wall_s"] > 0

    def test_recorded_speedup_meets_the_bar(self, baseline):
        # the PR's acceptance criterion: >=3x interpreter steps/sec,
        # recorded on the machine that produced the committed baseline
        assert baseline["microbench"]["speedup"] >= 3.0
