"""Figure 8(a): CAPS pass rates per version, C and Fortran.

Regenerates the bar series of the paper's Fig. 8(a) by running the full 1.0
suite against every simulated CAPS version.  Shape assertions encode the
paper's findings: the 3.0.x betas are much lower than 3.2.x/3.3.x, the
3.0.8 Fortran frontend regressed dramatically, 3.1.0 is still depressed by
the broken ``declare``, and the final releases are clean.
"""

import pytest

from benchmarks.conftest import bar, print_series
from repro.analysis import vendor_pass_rates


@pytest.fixture(scope="module")
def caps_rates(suite10, sweep_config):
    return vendor_pass_rates("caps", suite10, sweep_config)


def test_bench_fig8a_caps(benchmark, suite10, sweep_config):
    def sweep():
        return vendor_pass_rates("caps", suite10, sweep_config)

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for lang in ("c", "fortran"):
        for point in rates[lang]:
            rows.append(
                f"CAPS {point.version:7s} {lang:8s} "
                f"{point.pass_rate:6.1f}%  {bar(point.pass_rate)}"
            )
    print_series("Fig. 8(a) — CAPS pass rates (C & Fortran test suites)", rows)

    by_version = {
        lang: {p.version: p.pass_rate for p in rates[lang]}
        for lang in ("c", "fortran")
    }
    # betas much lower than 3.2.x/3.3.x (Section V-A)
    for lang in ("c", "fortran"):
        assert by_version[lang]["3.0.7"] < by_version[lang]["3.2.3"] - 20
    # the 3.0.8 Fortran regression
    assert by_version["fortran"]["3.0.8"] < by_version["fortran"]["3.0.7"] - 15
    # 3.1.0 below the 3.2.x plateau (declare not functional)
    assert by_version["c"]["3.1.0"] < by_version["c"]["3.2.3"]
    # final releases clean
    assert by_version["c"]["3.3.4"] == 100.0
    assert by_version["fortran"]["3.3.4"] == 100.0
    # quality improves (bugs "somewhat decreased with every newer version")
    assert by_version["c"]["3.3.3"] >= by_version["c"]["3.2.3"]
