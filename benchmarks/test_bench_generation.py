"""Infrastructure microbenchmarks: template generation and the compile +
execute pipeline.

The paper's template approach claims "it only needs minimum efforts to
develop the completed test code" — these benches quantify the machinery:
parsing + generating the entire 200-template corpus, compiling a
representative generated program with each frontend, and executing a
representative kernel on the simulator.
"""

import pytest

from benchmarks.conftest import print_series
from repro.compiler import Compiler
from repro.suite import openacc10_suite
from repro.suite.registry import _collect_10
from repro.templates import generate_pair, parse_template


def test_bench_corpus_generation(benchmark):
    """Parse + generate (functional and cross) the full corpus."""
    texts = _collect_10()

    def generate_all():
        total_lines = 0
        for text in texts:
            template = parse_template(text)
            functional, crossed = generate_pair(template)
            total_lines += functional.source.count("\n")
            if crossed is not None:
                total_lines += crossed.source.count("\n")
        return total_lines

    total_lines = benchmark(generate_all)
    print_series(
        "Template engine throughput",
        [f"{len(texts)} templates -> {total_lines} generated source lines/pass"],
    )
    assert total_lines > 5000


_C_SOURCE = """
int main(){
  int i, s = 0;
  int a[200];
  for(i=0;i<200;i++) a[i] = i;
  #pragma acc parallel loop reduction(+:s) copyin(a[0:200])
  for(i=0;i<200;i++) s += a[i];
  return s == 19900;
}
"""

_F_SOURCE = """
program bench
  implicit none
  integer :: i, s
  integer :: a(200)
  s = 0
  do i = 1, 200
    a(i) = i - 1
  end do
  !$acc parallel loop reduction(+:s) copyin(a(1:200))
  do i = 1, 200
    s = s + a(i)
  end do
  !$acc end parallel loop
  if (s == 19900) main = 1
end program bench
"""


@pytest.mark.parametrize("language,source", [
    ("c", _C_SOURCE), ("fortran", _F_SOURCE),
], ids=["c", "fortran"])
def test_bench_compile(benchmark, language, source):
    compiler = Compiler()

    def compile_once():
        return compiler.compile(source, language)

    program = benchmark(compile_once)
    assert program.program.main is not None


@pytest.mark.parametrize("language,source", [
    ("c", _C_SOURCE), ("fortran", _F_SOURCE),
], ids=["c", "fortran"])
def test_bench_execute(benchmark, language, source):
    program = Compiler().compile(source, language)

    def run_once():
        return program.run()

    result = benchmark(run_once)
    assert result.value == 1
