"""Benchmark fixtures and report helpers.

Every benchmark regenerates one table or figure of the paper's evaluation
and *prints the same rows/series the paper reports* (the bench harness is
run with ``pytest benchmarks/ --benchmark-only -s`` to see them; without
``-s`` the series still run and the assertions still guard the shapes).
"""

from __future__ import annotations

import pytest

from repro.harness import HarnessConfig
from repro.suite import openacc10_suite


@pytest.fixture(scope="session")
def suite10():
    return openacc10_suite()


@pytest.fixture(scope="session")
def sweep_config():
    """Fast single-iteration functional sweep (what Fig. 8 measures)."""
    return HarnessConfig(iterations=1, run_cross=False)


def print_series(title: str, rows) -> None:
    print()
    print(title)
    print("-" * len(title))
    for row in rows:
        print(row)


def bar(value: float, scale: float = 0.5) -> str:
    return "#" * int(value * scale)
