"""Ablation: the statistical certainty model of Section III.

Sweeps the iteration count M and reports the mean certainty
pc = 1 - (1 - nf/M)^M over the suite's conclusive cross tests, plus the
closed-form table for representative (nf, M) points — the trade the paper's
statistical methodology makes between repetition cost and confidence.
"""

import pytest

from benchmarks.conftest import print_series
from repro.harness import HarnessConfig, ValidationRunner, certainty


def test_bench_certainty_closed_form(benchmark):
    def table():
        rows = []
        for m in (1, 2, 3, 5, 10):
            for nf in range(0, m + 1, max(1, m // 3)):
                rows.append((m, nf, certainty(nf, m)))
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    print_series(
        "Certainty pc = 1-(1-nf/M)^M (Section III)",
        [f"M={m:2d} nf={nf:2d} -> pc={pc:6.2%}" for (m, nf, pc) in rows],
    )
    # deterministic cross failures give full certainty at any M
    for m, nf, pc in rows:
        if nf == m:
            assert pc == 1.0
        if nf == 0:
            assert pc == 0.0


@pytest.mark.parametrize("iterations", [1, 3])
def test_bench_certainty_suite_sweep(benchmark, suite10, iterations):
    """Mean certainty over a suite slice as M grows (cross runs enabled)."""
    config = HarnessConfig(iterations=iterations, run_cross=True,
                           languages=("c",),
                           feature_prefixes=["loop", "data"])
    runner = ValidationRunner(config=config)

    def run():
        return runner.run_suite(suite10)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    crossed = [r for r in report.results if r.cross is not None]
    conclusive = [r for r in crossed if r.cross_conclusive]
    mean_pc = sum(r.certainty for r in crossed) / max(1, len(crossed))
    print_series(
        f"Certainty sweep at M={iterations}",
        [
            f"tests with cross runs : {len(crossed)}",
            f"conclusive crosses    : {len(conclusive)}",
            f"mean certainty        : {mean_pc:6.2%}",
        ],
    )
    # on a conforming implementation all functional tests pass...
    assert report.pass_rate() == 100.0
    # ...and the simulator's determinism makes conclusive crosses fully
    # certain at every M
    for r in conclusive:
        assert r.certainty == 1.0
