"""Table I: bugs identified in different compilers (C and Fortran).

Prints the same 3 x 8 x 2 table the paper tabulates and asserts the model's
counts match the paper *exactly* for every (vendor, version, language)
cell.  A second benchmark verifies the detection property behind the
counts: running the suite against a version detects (attributes at least
one failing test to) every inventoried bug with a non-empty affects list.
"""

import pytest

from benchmarks.conftest import print_series
from repro.analysis import detected_bug_ids, table1_counts
from repro.compiler.vendors import vendor_version, vendor_versions
from repro.harness import HarnessConfig, ValidationRunner


def test_bench_table1_counts(benchmark):
    def build():
        return {vendor: table1_counts(vendor) for vendor in ("caps", "pgi", "cray")}

    table = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for vendor, entries in table.items():
        header_versions = " ".join(f"{r.version:>7s}" for r in entries)
        c_row = " ".join(f"{r.c_bugs:7d}" for r in entries)
        f_row = " ".join(f"{r.fortran_bugs:7d}" for r in entries)
        rows.append(f"{vendor.upper():5s} version  {header_versions}")
        rows.append(f"{'':5s} C bugs   {c_row}")
        rows.append(f"{'':5s} F bugs   {f_row}")
    print_series("Table I — bugs identified in different compilers", rows)

    for entries in table.values():
        for row in entries:
            assert row.matches_paper, (
                f"{row.vendor} {row.version}: {(row.c_bugs, row.fortran_bugs)}"
                f" != paper {row.paper_counts}"
            )


def test_bench_table1_detection(benchmark, suite10):
    """Every inventoried bug with an affects list is detected by the suite."""

    targets = [
        ("caps", "3.1.0"), ("pgi", "12.6"), ("pgi", "13.8"),
        ("cray", "8.1.2"),
    ]

    def detect():
        out = {}
        for vendor, version in targets:
            vv = vendor_version(vendor, version)
            for language in ("c", "fortran"):
                bugs = [b for b in vv.bugs(language) if b.affects]
                if not bugs:
                    continue
                config = HarnessConfig(iterations=1, run_cross=False,
                                       languages=(language,))
                report = ValidationRunner(vv.behavior(language), config).run_suite(suite10)
                detected = detected_bug_ids(vv, language, report)
                out[(vendor, version, language)] = (
                    len(detected), len(bugs),
                    {b.bug_id for b in bugs} - detected,
                )
        return out

    results = benchmark.pedantic(detect, rounds=1, iterations=1)

    rows = [
        f"{vendor:5s} {version:7s} {language:8s} detected {found:3d}/{total:3d}"
        for (vendor, version, language), (found, total, _miss) in results.items()
    ]
    print_series("Bug detection attribution (suite run -> Table I bugs)", rows)

    for key, (found, total, missing) in results.items():
        assert not missing, f"{key}: undetected bugs {missing}"
