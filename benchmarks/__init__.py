# benchmarks package (keeps `benchmarks.conftest` importable by the
# individual benchmark modules)
