"""Ablation: the value of the cross-test methodology (Section III).

The paper's motivation for cross tests: "a false positive can be an output
with the functional tests ... [the functional pass] may simply be due to
the use of the parallel construct."  This ablation demonstrates the two
things crosses buy:

1. *Weak-test detection* — a deliberately miswritten loop test (with
   ``num_gangs(1)`` the loop directive has no observable effect) passes its
   functional run on every compiler; only the cross run exposes that the
   pass is not attributable to the directive (reported as inconclusive).
2. *Measured cost* — cross testing roughly doubles suite runtime; the
   bench reports both configurations' wall time.
"""

import time

import pytest

from benchmarks.conftest import print_series
from repro.harness import HarnessConfig, ValidationRunner
from repro.suite.builders import check, template_text
from repro.templates import parse_template

#: the paper's Fig. 2 design, correctly parameterised (gangs > 1) ...
STRONG = template_text(
    name="strong_loop.c", feature="loop", language="c",
    description="work-sharing observable: 10 gangs",
    code="""
int main(){
  int i, a[40];
  for(i=0;i<40;i++) a[i]=0;
  #pragma acc parallel num_gangs(10) copy(a[0:40])
  {
    """ + check("#pragma acc loop") + """
    for(i=0;i<40;i++) a[i]++;
  }
  return a[0] == 1;
}
""",
)

#: ... and a weak variant where the directive cannot be observed
WEAK = template_text(
    name="weak_loop.c", feature="loop", language="c",
    description="miswritten: with one gang the loop directive has no effect",
    code="""
int main(){
  int i, a[40];
  for(i=0;i<40;i++) a[i]=0;
  #pragma acc parallel num_gangs(1) copy(a[0:40])
  {
    """ + check("#pragma acc loop") + """
    for(i=0;i<40;i++) a[i]++;
  }
  return a[0] == 1;
}
""",
)


def test_bench_crosstest_catches_weak_tests(benchmark):
    runner = ValidationRunner(config=HarnessConfig(iterations=2))
    strong = parse_template(STRONG)
    weak = parse_template(WEAK)

    def run():
        return runner.run_template(strong), runner.run_template(weak)

    strong_result, weak_result = benchmark.pedantic(run, rounds=1, iterations=1)

    print_series(
        "Cross-test ablation: weak vs strong test design",
        [
            f"strong: functional pass={strong_result.passed} "
            f"certainty={strong_result.certainty:.0%} "
            f"inconclusive={strong_result.cross_inconclusive_unexpectedly}",
            f"weak  : functional pass={weak_result.passed} "
            f"certainty={weak_result.certainty:.0%} "
            f"inconclusive={weak_result.cross_inconclusive_unexpectedly}",
        ],
    )

    # both pass functionally — indistinguishable without crosses
    assert strong_result.passed and weak_result.passed
    # the cross pass separates them
    assert strong_result.certainty == 1.0
    assert not strong_result.cross_inconclusive_unexpectedly
    assert weak_result.certainty == 0.0
    assert weak_result.cross_inconclusive_unexpectedly


def test_bench_crosstest_runtime_cost(benchmark, suite10):
    """Measured cost of enabling cross tests on a suite slice."""

    def run_both():
        times = {}
        for label, run_cross in (("functional-only", False),
                                 ("with-cross", True)):
            config = HarnessConfig(iterations=1, run_cross=run_cross,
                                   languages=("c",),
                                   feature_prefixes=["parallel"])
            runner = ValidationRunner(config=config)
            start = time.perf_counter()
            report = runner.run_suite(suite10)
            times[label] = (time.perf_counter() - start, report)
        return times

    times = benchmark.pedantic(run_both, rounds=1, iterations=1)

    base, base_report = times["functional-only"]
    crossed, cross_report = times["with-cross"]
    print_series(
        "Cross-test ablation: runtime cost",
        [
            f"functional-only: {base*1000:7.1f} ms "
            f"({len(base_report.results)} tests)",
            f"with-cross     : {crossed*1000:7.1f} ms "
            f"(certainty available for "
            f"{sum(1 for r in cross_report.results if r.cross)} tests)",
        ],
    )
    assert crossed > base  # crosses cost real time...
    assert any(r.certainty == 1.0 for r in cross_report.results)  # ...and buy confidence
