"""Figure 13 / Section VII: production use on the Titan simulation.

The suite "runs on random nodes to check functionality requirements of the
nodes" and "is also used to test different software stacks (OpenACC to
CUDA or OpenCL)" and "to track functionality improvements or degradation
over time".  This bench regenerates all three workflows: a random-node
sweep across both stacks (degraded nodes must be flagged, healthy ones
must not), and a longitudinal timeline across a bad rollout and its fix.
"""

import pytest

from benchmarks.conftest import print_series
from repro.compiler import CompilerBehavior
from repro.harness import HarnessConfig
from repro.harness.titan import (
    STACK_CUDA,
    STACK_OPENCL,
    TitanCluster,
    TitanHarness,
)


def test_bench_fig13_node_sweep(benchmark, suite10):
    cluster = TitanCluster(num_nodes=16, degraded_fraction=0.25, seed=42)
    harness = TitanHarness(
        cluster, suite10,
        config=HarnessConfig(iterations=1, run_cross=False, languages=("c",)),
        feature_prefixes=["parallel", "update"],
    )

    def sweep():
        return harness.sweep(sample_size=8, seed=3)

    checks = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        f"node {c.node_id:3d} {c.stack:15s} "
        f"{'healthy ' if c.healthy else 'DEGRADED'} "
        f"pass {c.pass_rate:6.1f}% {'FLAGGED' if c.flagged else ''}"
        for c in checks
    ]
    print_series("Fig. 13 — validation sweep over random Titan nodes", rows)

    # both stacks validated on each sampled node
    assert {c.stack for c in checks} == {STACK_CUDA, STACK_OPENCL}
    # the harness flags exactly the degraded nodes
    for check in checks:
        assert check.flagged == (not check.healthy), (
            f"node {check.node_id} ({check.stack}) misclassified"
        )


def test_bench_fig13_timeline(benchmark, suite10):
    cluster = TitanCluster(num_nodes=8, degraded_fraction=0.0, seed=11)
    harness = TitanHarness(
        cluster, suite10,
        config=HarnessConfig(iterations=1, run_cross=False, languages=("c",)),
        feature_prefixes=["update", "wait"],
    )
    regressed = CompilerBehavior(name="titan-cc", version="cuda-2",
                                 ignore_update=True)
    fixed = CompilerBehavior(name="titan-cc", version="cuda-3")

    def track():
        return harness.timeline(
            epochs=4, sample_size=4,
            upgrades={1: (STACK_CUDA, regressed), 3: (STACK_CUDA, fixed)},
        )

    records = benchmark.pedantic(track, rounds=1, iterations=1)

    rows = [
        f"epoch {int(r['epoch'])}: cuda {r[STACK_CUDA]:6.1f}%  "
        f"opencl {r[STACK_OPENCL]:6.1f}%  "
        f"flagged(cuda)={int(r[STACK_CUDA + ':flagged'])}"
        for r in records
    ]
    print_series("Fig. 13 — functionality tracking across stack upgrades", rows)

    # the bad rollout degrades epochs 1-2; the fix restores epoch 3
    assert records[0][STACK_CUDA] == 100.0
    assert records[1][STACK_CUDA] < 100.0
    assert records[2][STACK_CUDA] < 100.0
    assert records[3][STACK_CUDA] == 100.0
    # the OpenCL stack is unaffected throughout (stack isolation)
    assert all(r[STACK_OPENCL] == 100.0 for r in records)
