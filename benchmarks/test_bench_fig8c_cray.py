"""Figure 8(c): Cray pass rates per version, C and Fortran.

Shape assertions encode the paper's finding that "the bar plots mostly
show no variation": the C series is exactly flat across all eight versions
(the inventory never changed), Fortran gains only the single 8.1.7 fix,
and Fortran sits well above C (Table I: 5-6 F bugs vs a constant 16 C
bugs, dominated by the scalar-copy wrong-code bug of Section V-B).
"""

import pytest

from benchmarks.conftest import bar, print_series
from repro.analysis import vendor_pass_rates


def test_bench_fig8c_cray(benchmark, suite10, sweep_config):
    def sweep():
        return vendor_pass_rates("cray", suite10, sweep_config)

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for lang in ("c", "fortran"):
        for point in rates[lang]:
            rows.append(
                f"Cray {point.version:7s} {lang:8s} "
                f"{point.pass_rate:6.1f}%  {bar(point.pass_rate)}"
            )
    print_series("Fig. 8(c) — Cray pass rates (C & Fortran test suites)", rows)

    c = [p.pass_rate for p in rates["c"]]
    f = [p.pass_rate for p in rates["fortran"]]

    # C: perfectly flat (no variation)
    assert len(set(c)) == 1
    # Fortran: flat except the single 8.1.7 fix
    assert len(set(f)) <= 2
    assert f[-1] >= f[0]
    # Fortran above C throughout
    for c_rate, f_rate in zip(c, f):
        assert f_rate > c_rate
    # the scalar-copy bug manifests in the C base tests (Section V-B)
    failing = set(rates["c"][0].report.failed_features("c"))
    assert "parallel" in failing and "kernels" in failing
