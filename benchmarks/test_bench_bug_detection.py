"""Section V-B showcase bugs: end-to-end detection through the harness.

For each of the paper's three qualitative bug analyses, run the relevant
suite slice against the buggy vendor version and against the fixed (or
reference) one, and report which features flip from FAIL to PASS — the
exact workflow the authors ran with the vendors ("the vendors fix them and
inform us when a newer version of the compiler is released.  We then
verify if the issues were resolved").
"""

import pytest

from benchmarks.conftest import print_series
from repro.compiler.vendors import vendor_version
from repro.harness import HarnessConfig, ValidationRunner


CASES = [
    # (vendor, buggy version, fixed version, feature slice, bug headline)
    ("pgi", "13.2", None, ["parallel.async", "kernels.async",
                           "runtime.acc_async_test"],
     "async wedged by data clauses (Fig. 10) — never fixed in 13.x"),
    ("cray", "8.1.2", None, ["parallel", "kernels"],
     "scalar copy does not happen — constant across versions"),
]


@pytest.mark.parametrize(
    "vendor,buggy,fixed,features,headline",
    CASES,
    ids=[c[0] for c in CASES],
)
def test_bench_showcase_bug_detection(
    benchmark, suite10, vendor, buggy, fixed, features, headline
):
    config = HarnessConfig(iterations=1, run_cross=False, languages=("c",),
                           features=None, feature_prefixes=features)

    def detect():
        buggy_vv = vendor_version(vendor, buggy)
        buggy_report = ValidationRunner(buggy_vv.behavior("c"), config).run_suite(suite10)
        fixed_report = None
        if fixed is not None:
            fixed_vv = vendor_version(vendor, fixed)
            fixed_report = ValidationRunner(fixed_vv.behavior("c"), config).run_suite(suite10)
        return buggy_report, fixed_report

    buggy_report, fixed_report = benchmark.pedantic(detect, rounds=1, iterations=1)

    rows = [f"{vendor} {buggy}: {headline}"]
    for result in buggy_report.results:
        rows.append(
            f"  {result.feature:30s} "
            f"{'PASS' if result.passed else 'FAIL':4s}"
            + (f" [{result.failure_kind.value}]" if not result.passed else "")
        )
    print_series(f"Showcase bug — {vendor} {buggy}", rows)

    assert buggy_report.failures(), f"{vendor} {buggy} bug not detected"
    if fixed_report is not None:
        assert not fixed_report.failures(), (
            f"{vendor} {fixed} should have resolved the bug"
        )


def test_bench_caps_constant_expression_bug(benchmark):
    """Fig. 9 directly: the suite uses constant expressions by design
    (Section IV-A1), so the CAPS restriction is exposed by compiling the
    paper's variable-expression variant against old and new versions."""
    from repro.compiler import CompileError, Compiler

    src = """
int main() {
  int gangs = 8;
  int known_gang_num = 8;
  int gang_num = 0;
  #pragma acc parallel num_gangs(gangs) reduction(+:gang_num)
  {
    gang_num++;
  }
  return (gang_num == known_gang_num);
}
"""

    def probe():
        outcomes = {}
        for version in ("3.0.7", "3.0.8", "3.1.0", "3.3.4"):
            compiler = Compiler(vendor_version("caps", version).behavior("c"))
            try:
                result = compiler.compile(src, "c").run()
                outcomes[version] = f"ran, returned {result.value}"
            except CompileError as err:
                outcomes[version] = f"compile error: {err.message[:50]}"
        return outcomes

    outcomes = benchmark.pedantic(probe, rounds=1, iterations=1)
    print_series(
        "Showcase bug — CAPS constant-only parallelism expressions (Fig. 9)",
        [f"caps {v:7s}: {o}" for v, o in outcomes.items()],
    )
    assert outcomes["3.0.7"].startswith("compile error")
    assert outcomes["3.0.8"].startswith("compile error")
    assert outcomes["3.1.0"] == "ran, returned 1"
    assert outcomes["3.3.4"] == "ran, returned 1"
